// Resilience campaign for the fault-tolerant fleet runtime (DESIGN.md §14):
// a guarded FleetDriver of N EMN recovery sessions driven through every
// infra-chaos axis, the overload-shedding path, and the crash-safety
// (checkpoint/restore) corruption matrix. Committed as BENCH_resilience.json.
//
// Cells (all at --sessions width, guard ladder enabled):
//   clean       no chaos — the byte-identical-to-unguarded baseline;
//   stall       injected decide stalls at --chaos-rate. The guard isolates a
//               stalled session down its ladder alone, so the stall never
//               materialises as wall-clock — the committed gate is that the
//               fleet still serves >= 0.8x the clean actions/second;
//   obs-corrupt corrupted observation ids at --chaos-rate (half in-alphabet,
//               half out-of-range — the latter must be detected + rejected);
//   poison      belief poisoning (NaN/denormal) at --chaos-rate — the hygiene
//               scan must quarantine poisoned lanes to the episode prior;
//   all-axes    the three axes together (optionally checkpointing every
//               --checkpoint-every ticks when --checkpoint is given);
//   overload    clean fleet under a deterministic per-tick admission quota
//               (--tick-budget-decisions, default sessions/2) — excess solve
//               intents must shed to ladder fallbacks, never over the quota.
//
// Gates folded into all_checks_passed:
//   - every chaos cell completes with zero aborted ticks, and each axis's
//     injection/repair counters actually moved (the chaos was real);
//   - a tiny *unguarded* poison fleet aborts (motivation: without the guard
//     one NaN lane takes down the whole batched Bayes update);
//   - stall-axis served/sec >= 0.8 x clean served/sec;
//   - overload: fresh decisions never exceed quota x ticks, and shedding
//     engaged;
//   - Batch == Loop stay bitwise identical with guards + all chaos axes + a
//     deterministic budget enabled (the §14 parity contract);
//   - checkpoint round trip: save mid-run, resume in a fresh driver, bitwise
//     equal to the uninterrupted run (beliefs, actions, ladder, tallies);
//   - checkpoint corruption matrix: truncation, bit flips, foreign magic,
//     unknown version, and an options mismatch are all rejected with
//     actionable errors, never partially applied.
//
// Flags:
//   --sessions=N       fleet width per cell (default 10000; --smoke: 256)
//   --ticks=N          measured ticks per cell (default 20; --smoke: 5)
//   --warmup=N         unmeasured warm-up ticks per cell (default 2)
//   --chaos-rate=P     per-axis event rate (default 0.3)
//   --checkpoint=FILE  also keep a checkpoint of the all-axes cell at FILE
//   --checkpoint-every=N  save cadence (ticks) of the all-axes cell when
//                      --checkpoint is given (default 10)
//   --parity-sessions=N, --parity-ticks=N   shape of the bitwise check
//   --smoke            tiny cells for CI
//   --out=FILE         JSON report (default BENCH_resilience.json; schema
//                      recoverd.resilience.v1)
//   plus the shared setup, --fleet-*/--tick-budget-*/--chaos-stall-ms, and
//   observability flags (bench_common / util/obs_main.hpp). SIGINT/SIGTERM
//   wind the campaign down between ticks and still write the (partial,
//   failed-gates) report.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "obs/json.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fleet_driver.hpp"
#include "util/check.hpp"
#include "util/obs_main.hpp"
#include "util/shutdown.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace recoverd::bench {
namespace {

struct AxisSpec {
  const char* name;
  double stall_rate = 0.0;
  double obs_corrupt_rate = 0.0;
  double poison_rate = 0.0;
};

struct CellResult {
  std::string axis;
  std::size_t sessions = 0;
  std::size_t ticks = 0;       // ticks actually measured (shutdown may cut short)
  bool aborted = false;        // a tick threw — the fleet did NOT survive
  std::string abort_error;
  double total_ms = 0.0;
  double tick_ms_p50 = 0.0;
  double tick_ms_p99 = 0.0;
  sim::FleetStats delta;       // counters over the measured ticks
  std::size_t served = 0;      // lanes handed an action: fresh + fallbacks
  double served_per_sec = 0.0;
};

sim::FleetStats stats_delta(const sim::FleetStats& after,
                            const sim::FleetStats& before) {
  sim::FleetStats d;
  d.ticks = after.ticks - before.ticks;
  d.decisions = after.decisions - before.decisions;
  d.classes = after.classes - before.classes;
  d.shared_hits = after.shared_hits - before.shared_hits;
  d.episodes_completed = after.episodes_completed - before.episodes_completed;
  d.episodes_recovered = after.episodes_recovered - before.episodes_recovered;
  d.episodes_truncated = after.episodes_truncated - before.episodes_truncated;
  d.belief_mismatches = after.belief_mismatches - before.belief_mismatches;
  d.degraded_decides = after.degraded_decides - before.degraded_decides;
  d.reduced_decides = after.reduced_decides - before.reduced_decides;
  d.cached_fallbacks = after.cached_fallbacks - before.cached_fallbacks;
  d.heuristic_fallbacks = after.heuristic_fallbacks - before.heuristic_fallbacks;
  d.shed = after.shed - before.shed;
  d.stalls_injected = after.stalls_injected - before.stalls_injected;
  d.poisons_injected = after.poisons_injected - before.poisons_injected;
  d.beliefs_repaired = after.beliefs_repaired - before.beliefs_repaired;
  d.obs_corrupted = after.obs_corrupted - before.obs_corrupted;
  d.obs_invalid_rejected = after.obs_invalid_rejected - before.obs_invalid_rejected;
  d.livelock_respawns = after.livelock_respawns - before.livelock_respawns;
  d.ladder_demotions = after.ladder_demotions - before.ladder_demotions;
  d.ladder_promotions = after.ladder_promotions - before.ladder_promotions;
  return d;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const auto index = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return sorted[std::min(index, n - 1)];
}

/// Runs one fleet cell: warmup, then `ticks` measured ticks (polling the
/// shutdown flag between ticks). A throwing tick marks the cell aborted —
/// the survival gates require that never to happen with the guard on.
CellResult run_cell(const std::string& axis, const Pomdp& recovery,
                    const Pomdp& base, bounds::BoundSet& set,
                    const sim::FaultInjector& injector, std::uint64_t seed,
                    const sim::FleetOptions& options, std::size_t warmup,
                    std::size_t ticks, const std::string& checkpoint_path = "",
                    std::size_t checkpoint_every = 0) {
  CellResult cell;
  cell.axis = axis;
  cell.sessions = options.sessions;
  std::vector<double> tick_ms;
  tick_ms.reserve(ticks);
  try {
    sim::FleetDriver fleet(recovery, base, set, injector, seed, options);
    for (std::size_t i = 0; i < warmup && !shutdown_requested(); ++i) fleet.tick();
    const sim::FleetStats before = fleet.stats();
    for (std::size_t i = 0; i < ticks; ++i) {
      if (shutdown_requested()) break;
      Timer timer;
      fleet.tick();
      tick_ms.push_back(timer.elapsed_ms());
      if (checkpoint_every > 0 && !checkpoint_path.empty() &&
          (i + 1) % checkpoint_every == 0) {
        fleet.save_checkpoint(checkpoint_path);
      }
    }
    cell.delta = stats_delta(fleet.stats(), before);
  } catch (const std::exception& error) {
    cell.aborted = true;
    cell.abort_error = error.what();
  }
  cell.ticks = tick_ms.size();
  for (const double ms : tick_ms) cell.total_ms += ms;
  cell.tick_ms_p50 = percentile(tick_ms, 0.5);
  cell.tick_ms_p99 = percentile(tick_ms, 0.99);
  cell.served = cell.delta.decisions + cell.delta.cached_fallbacks +
                cell.delta.heuristic_fallbacks;
  cell.served_per_sec =
      cell.total_ms > 0.0
          ? 1000.0 * static_cast<double>(cell.served) / cell.total_ms
          : 0.0;
  return cell;
}

obs::Json cell_json(const CellResult& cell) {
  obs::Json::Object row;
  row["axis"] = cell.axis;
  row["sessions"] = static_cast<std::uint64_t>(cell.sessions);
  row["ticks"] = static_cast<std::uint64_t>(cell.ticks);
  row["aborted"] = cell.aborted;
  if (cell.aborted) row["abort_error"] = cell.abort_error;
  row["total_ms"] = cell.total_ms;
  row["tick_ms_p50"] = cell.tick_ms_p50;
  row["tick_ms_p99"] = cell.tick_ms_p99;
  row["served"] = static_cast<std::uint64_t>(cell.served);
  row["served_per_sec"] = cell.served_per_sec;
  const sim::FleetStats& d = cell.delta;
  row["decisions"] = static_cast<std::uint64_t>(d.decisions);
  row["degraded_decides"] = static_cast<std::uint64_t>(d.degraded_decides);
  row["reduced_decides"] = static_cast<std::uint64_t>(d.reduced_decides);
  row["cached_fallbacks"] = static_cast<std::uint64_t>(d.cached_fallbacks);
  row["heuristic_fallbacks"] = static_cast<std::uint64_t>(d.heuristic_fallbacks);
  row["shed"] = static_cast<std::uint64_t>(d.shed);
  row["stalls_injected"] = static_cast<std::uint64_t>(d.stalls_injected);
  row["poisons_injected"] = static_cast<std::uint64_t>(d.poisons_injected);
  row["beliefs_repaired"] = static_cast<std::uint64_t>(d.beliefs_repaired);
  row["obs_corrupted"] = static_cast<std::uint64_t>(d.obs_corrupted);
  row["obs_invalid_rejected"] = static_cast<std::uint64_t>(d.obs_invalid_rejected);
  row["livelock_respawns"] = static_cast<std::uint64_t>(d.livelock_respawns);
  row["ladder_demotions"] = static_cast<std::uint64_t>(d.ladder_demotions);
  row["ladder_promotions"] = static_cast<std::uint64_t>(d.ladder_promotions);
  row["episodes_completed"] = static_cast<std::uint64_t>(d.episodes_completed);
  row["belief_mismatches"] = static_cast<std::uint64_t>(d.belief_mismatches);
  return obs::Json(std::move(row));
}

bool stats_equal_modulo_work(const sim::FleetStats& a, const sim::FleetStats& b) {
  // classes/shared_hits are Batch-mode work accounting — everything else is
  // under the bitwise contract.
  return a.ticks == b.ticks && a.decisions == b.decisions &&
         a.episodes_completed == b.episodes_completed &&
         a.episodes_recovered == b.episodes_recovered &&
         a.episodes_truncated == b.episodes_truncated &&
         a.belief_mismatches == b.belief_mismatches &&
         a.degraded_decides == b.degraded_decides &&
         a.reduced_decides == b.reduced_decides &&
         a.cached_fallbacks == b.cached_fallbacks &&
         a.heuristic_fallbacks == b.heuristic_fallbacks && a.shed == b.shed &&
         a.stalls_injected == b.stalls_injected &&
         a.poisons_injected == b.poisons_injected &&
         a.beliefs_repaired == b.beliefs_repaired &&
         a.obs_corrupted == b.obs_corrupted &&
         a.obs_invalid_rejected == b.obs_invalid_rejected &&
         a.livelock_respawns == b.livelock_respawns &&
         a.ladder_demotions == b.ladder_demotions &&
         a.ladder_promotions == b.ladder_promotions;
}

bool fleets_bitwise_equal(const sim::FleetDriver& a, const sim::FleetDriver& b,
                          std::size_t num_states, const char* label) {
  const std::size_t sessions = a.sessions();
  for (StateId s = 0; s < num_states; ++s) {
    const auto la = a.beliefs().state_lanes(s);
    const auto lb = b.beliefs().state_lanes(s);
    if (std::memcmp(la.data(), lb.data(), sessions * sizeof(double)) != 0) {
      std::fprintf(stderr, "resilience %s: belief bits diverged (state %zu)\n",
                   label, static_cast<std::size_t>(s));
      return false;
    }
  }
  if (!std::equal(a.last_actions().begin(), a.last_actions().end(),
                  b.last_actions().begin())) {
    std::fprintf(stderr, "resilience %s: actions diverged\n", label);
    return false;
  }
  if (!std::equal(a.ladder_stages().begin(), a.ladder_stages().end(),
                  b.ladder_stages().begin())) {
    std::fprintf(stderr, "resilience %s: ladder stages diverged\n", label);
    return false;
  }
  if (!stats_equal_modulo_work(a.stats(), b.stats())) {
    std::fprintf(stderr, "resilience %s: tallies diverged\n", label);
    return false;
  }
  return true;
}

/// Batch vs Loop lock-step under guards + every chaos axis + a deterministic
/// admission quota — the §14 extension of the throughput parity contract.
bool parity_check(const Pomdp& recovery, const Pomdp& base, bounds::BoundSet& set,
                  const sim::FaultInjector& injector, std::uint64_t seed,
                  sim::FleetOptions options, std::size_t sessions,
                  std::size_t ticks) {
  options.sessions = sessions;
  options.tick_budget_decisions = std::max<std::size_t>(1, sessions / 2);
  options.mode = sim::FleetMode::Batch;
  sim::FleetDriver batch(recovery, base, set, injector, seed, options);
  options.mode = sim::FleetMode::Loop;
  sim::FleetDriver loop(recovery, base, set, injector, seed, options);
  for (std::size_t t = 0; t < ticks; ++t) {
    batch.tick();
    loop.tick();
    if (!fleets_bitwise_equal(batch, loop, recovery.num_states(), "parity")) {
      std::fprintf(stderr, "resilience parity: diverged at tick %zu\n", t + 1);
      return false;
    }
  }
  return true;
}

/// Checkpoint round trip: run, save mid-stream, keep running to the
/// reference state; a fresh driver restores the file and must land on the
/// exact same bits after the same remaining ticks.
bool checkpoint_roundtrip_check(const Pomdp& recovery, const Pomdp& base,
                                bounds::BoundSet& set,
                                const sim::FaultInjector& injector,
                                std::uint64_t seed,
                                const sim::FleetOptions& options,
                                const std::string& path) {
  sim::FleetDriver reference(recovery, base, set, injector, seed, options);
  for (int t = 0; t < 3; ++t) reference.tick();
  reference.save_checkpoint(path);
  for (int t = 0; t < 5; ++t) reference.tick();

  sim::FleetDriver resumed(recovery, base, set, injector, seed, options);
  resumed.restore_checkpoint(path);
  for (int t = 0; t < 5; ++t) resumed.tick();
  return fleets_bitwise_equal(reference, resumed, recovery.num_states(),
                              "checkpoint round trip");
}

struct CorruptionCase {
  std::string name;
  bool rejected = false;
  bool state_intact = false;  // driver still bitwise equal to its twin after
  std::string error;
};

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RD_EXPECTS(in.good(), "resilience campaign: cannot reread checkpoint");
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RD_EXPECTS(out.good(), "resilience campaign: cannot write corrupted variant");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The infra-chaos checkpoint axis: every corrupted variant of a valid file
/// must be rejected with an actionable error, and a rejected restore must
/// leave the driver able to keep ticking in lock-step with an untouched twin.
std::vector<CorruptionCase> checkpoint_corruption_check(
    const Pomdp& recovery, const Pomdp& base, bounds::BoundSet& set,
    const sim::FaultInjector& injector, std::uint64_t seed,
    const sim::FleetOptions& options, const std::string& path) {
  const std::string bytes = read_file_bytes(path);
  const std::string variant_path = path + ".corrupt";

  std::vector<std::pair<std::string, std::string>> variants;
  variants.emplace_back("truncated", bytes.substr(0, bytes.size() / 2));
  std::string flipped = bytes;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x20);
  variants.emplace_back("bit flip", std::move(flipped));
  std::string foreign = bytes;
  foreign[0] = static_cast<char>(foreign[0] ^ 0xff);
  variants.emplace_back("foreign magic", std::move(foreign));
  std::string future = bytes;
  future[8] = 0x7f;  // version field — must be rejected before the CRC check
  variants.emplace_back("unknown version", std::move(future));

  std::vector<CorruptionCase> cases;
  for (auto& [name, variant_bytes] : variants) {
    CorruptionCase c;
    c.name = name;
    write_file_bytes(variant_path, variant_bytes);
    sim::FleetDriver victim(recovery, base, set, injector, seed, options);
    sim::FleetDriver twin(recovery, base, set, injector, seed, options);
    try {
      victim.restore_checkpoint(variant_path);
    } catch (const ModelError& error) {
      c.rejected = true;
      c.error = error.what();
    }
    // A rejected restore must be a no-op: the victim keeps ticking bitwise
    // in step with the twin that never saw the file.
    victim.tick();
    twin.tick();
    c.state_intact = fleets_bitwise_equal(victim, twin, recovery.num_states(),
                                          ("corruption " + name).c_str());
    cases.push_back(std::move(c));
  }

  // Options drift: the same (valid) file into a fleet whose decision-relevant
  // options changed must be rejected by the options hash.
  {
    CorruptionCase c;
    c.name = "options mismatch";
    sim::FleetOptions other = options;
    other.tree_depth = options.tree_depth + 1;
    sim::FleetDriver victim(recovery, base, set, injector, seed, other);
    sim::FleetDriver twin(recovery, base, set, injector, seed, other);
    try {
      victim.restore_checkpoint(path);
    } catch (const ModelError& error) {
      c.rejected = true;
      c.error = error.what();
    }
    victim.tick();
    twin.tick();
    c.state_intact = fleets_bitwise_equal(victim, twin, recovery.num_states(),
                                          "corruption options mismatch");
    cases.push_back(std::move(c));
  }
  std::remove(variant_path.c_str());
  return cases;
}

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const bool smoke = args.get_bool("smoke", false);
  const std::size_t sessions = args.get_count("sessions", smoke ? 256 : 10000);
  const std::size_t ticks = args.get_count("ticks", smoke ? 5 : 20);
  const std::size_t warmup = args.get_size("warmup", 2);
  const double chaos_rate = args.get_double("chaos-rate", 0.3);
  RD_EXPECTS(chaos_rate >= 0.0 && chaos_rate <= 1.0,
             "resilience campaign: --chaos-rate must be in [0, 1]");
  const std::size_t parity_sessions = args.get_count("parity-sessions", 64);
  const std::size_t parity_ticks = args.get_count("parity-ticks", 8);
  const std::string keep_checkpoint = args.get_string("checkpoint", "");
  const std::size_t checkpoint_every =
      keep_checkpoint.empty() ? 0 : args.get_count("checkpoint-every", 10);

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);

  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
  controller::BootstrapOptions boot;
  boot.iterations = setup.bootstrap_runs;
  boot.tree_depth = setup.bootstrap_depth;
  boot.observe_action = ids.topo.observe_action;
  boot.seed = setup.seed;
  boot.branch_floor = setup.branch_floor;
  Timer bootstrap_timer;
  controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()),
                               boot);
  std::fprintf(stderr, "bootstrap done in %.0f ms, |B|=%zu\n",
               bootstrap_timer.elapsed_ms(), set.size());

  // The guarded fleet configuration every cell shares. The guard ladder is
  // the campaign's subject, so it defaults ON here (--fleet-guard=0 reverts);
  // chaos rates and budgets are set per cell below.
  sim::FleetOptions fleet_options;
  fleet_options.observe_action = ids.topo.observe_action;
  fleet_options.tree_depth = 1;
  fleet_options.branch_floor = setup.branch_floor;
  fleet_options.memo = setup.memo;
  fleet_options.memo_max_mb = setup.memo_max_mb;
  fleet_options.memo_carry = args.get_bool("memo-carry", false);
  fleet_options.max_steps = 10000;
  fleet_options.guard.enabled = true;
  apply_fleet_resilience_flags(args, fleet_options);
  const double stall_ms = fleet_options.chaos.stall_ms;
  const std::size_t quota =
      fleet_options.tick_budget_decisions > 0 ? fleet_options.tick_budget_decisions
                                              : std::max<std::size_t>(1, sessions / 2);
  fleet_options.tick_budget_decisions = 0;  // axis cells run unthrottled
  fleet_options.tick_budget_ms = 0.0;
  fleet_options.chaos = sim::ChaosOptions{};

  std::printf("=== Fleet resilience campaign (EMN fleet, depth %d, guard %s) ===\n",
              fleet_options.tree_depth, fleet_options.guard.enabled ? "on" : "off");
  std::printf("simd: %s, |B|=%zu, seed=%llu, chaos rate %.2f\n\n",
              simd::describe_active_mode().c_str(), set.size(),
              static_cast<unsigned long long>(setup.seed), chaos_rate);

  // --- §14 parity contract under full resilience -------------------------
  sim::FleetOptions parity_options = fleet_options;
  parity_options.chaos.stall_rate = chaos_rate;
  parity_options.chaos.stall_ms = stall_ms;
  parity_options.chaos.obs_corrupt_rate = chaos_rate;
  parity_options.chaos.poison_rate = chaos_rate;
  const bool parity_ok =
      !shutdown_requested() &&
      parity_check(recovery, base, set, injector, setup.seed, parity_options,
                   parity_sessions, parity_ticks);
  std::printf(
      "batch-vs-loop parity under guards+chaos+budget (%zu sessions, %zu ticks): %s\n\n",
      parity_sessions, parity_ticks, parity_ok ? "bitwise identical" : "MISMATCH");

  // --- chaos axes ---------------------------------------------------------
  const AxisSpec axes[] = {
      {"clean", 0.0, 0.0, 0.0},
      {"stall", chaos_rate, 0.0, 0.0},
      {"obs-corrupt", 0.0, chaos_rate, 0.0},
      {"poison", 0.0, 0.0, chaos_rate},
      {"all-axes", chaos_rate, chaos_rate, chaos_rate},
  };

  std::printf("%12s | %11s %11s %11s | %9s %9s %9s %9s | %7s\n", "axis",
              "served/sec", "tick_p50ms", "tick_p99ms", "decided", "degraded",
              "shed", "repaired", "aborted");

  obs::Json::Array rows;
  std::vector<CellResult> cells;
  for (const AxisSpec& axis : axes) {
    if (shutdown_requested()) break;
    sim::FleetOptions options = fleet_options;
    options.sessions = sessions;
    options.chaos.stall_rate = axis.stall_rate;
    options.chaos.stall_ms = stall_ms;
    options.chaos.obs_corrupt_rate = axis.obs_corrupt_rate;
    options.chaos.poison_rate = axis.poison_rate;
    const bool is_all = std::string(axis.name) == "all-axes";
    CellResult cell = run_cell(axis.name, recovery, base, set, injector, setup.seed,
                               options, warmup, ticks,
                               is_all ? keep_checkpoint : std::string(),
                               is_all ? checkpoint_every : 0);
    std::printf("%12s | %11.0f %11.2f %11.2f | %9zu %9zu %9zu %9zu | %7s\n",
                cell.axis.c_str(), cell.served_per_sec, cell.tick_ms_p50,
                cell.tick_ms_p99, cell.delta.decisions, cell.delta.degraded_decides,
                cell.delta.shed, cell.delta.beliefs_repaired,
                cell.aborted ? "YES" : "no");
    rows.push_back(cell_json(cell));
    cells.push_back(std::move(cell));
  }

  // --- overload cell ------------------------------------------------------
  CellResult overload;
  if (!shutdown_requested()) {
    sim::FleetOptions options = fleet_options;
    options.sessions = sessions;
    options.tick_budget_decisions = quota;
    overload = run_cell("overload", recovery, base, set, injector, setup.seed,
                        options, 0, ticks);
    std::printf("%12s | %11.0f %11.2f %11.2f | %9zu %9zu %9zu %9zu | %7s\n",
                overload.axis.c_str(), overload.served_per_sec, overload.tick_ms_p50,
                overload.tick_ms_p99, overload.delta.decisions,
                overload.delta.degraded_decides, overload.delta.shed,
                overload.delta.beliefs_repaired, overload.aborted ? "YES" : "no");
  }

  // --- the motivation cell: unguarded poison aborts the batch -------------
  bool unguarded_poison_aborts = false;
  std::string unguarded_error;
  if (!shutdown_requested()) {
    sim::FleetOptions options = fleet_options;
    options.sessions = 64;
    options.guard.enabled = false;
    options.chaos.poison_rate = 0.5;
    const CellResult cell = run_cell("unguarded-poison", recovery, base, set,
                                     injector, setup.seed, options, 0, 10);
    unguarded_poison_aborts = cell.aborted;
    unguarded_error = cell.abort_error;
    std::printf("\nunguarded poison fleet (64 sessions, rate 0.5): %s\n",
                cell.aborted ? "aborted as expected" : "SURVIVED (gate fails)");
  }

  // --- crash safety -------------------------------------------------------
  const std::string out_path = args.get_string("out", "BENCH_resilience.json");
  const std::string scratch_ckpt =
      keep_checkpoint.empty()
          ? (out_path.empty() ? std::string("resilience.ckpt") : out_path + ".ckpt")
          : keep_checkpoint + ".roundtrip";
  bool roundtrip_ok = false;
  std::vector<CorruptionCase> corruption;
  if (!shutdown_requested()) {
    sim::FleetOptions options = parity_options;  // guards + all chaos axes
    options.sessions = smoke ? 64 : 256;
    roundtrip_ok = checkpoint_roundtrip_check(recovery, base, set, injector,
                                              setup.seed, options, scratch_ckpt);
    std::printf("checkpoint round trip (%zu sessions, save@3, +5 ticks): %s\n",
                options.sessions, roundtrip_ok ? "bitwise identical" : "MISMATCH");
    corruption = checkpoint_corruption_check(recovery, base, set, injector,
                                             setup.seed, options, scratch_ckpt);
    for (const CorruptionCase& c : corruption) {
      std::printf("checkpoint corruption [%s]: %s%s\n", c.name.c_str(),
                  c.rejected ? "rejected" : "ACCEPTED (gate fails)",
                  c.state_intact ? "" : ", driver state DAMAGED");
    }
    std::remove(scratch_ckpt.c_str());
  }

  // --- gates --------------------------------------------------------------
  const bool interrupted = shutdown_requested();
  const CellResult* clean = nullptr;
  const CellResult* stall = nullptr;
  for (const CellResult& cell : cells) {
    if (cell.axis == "clean") clean = &cell;
    if (cell.axis == "stall") stall = &cell;
  }
  bool aborts_ok = cells.size() == 5 && !overload.axis.empty();
  for (const CellResult& cell : cells) aborts_ok = aborts_ok && !cell.aborted;
  aborts_ok = aborts_ok && !overload.aborted;

  bool chaos_active_ok = true;
  for (const CellResult& cell : cells) {
    if (cell.axis == "stall" || cell.axis == "all-axes")
      chaos_active_ok = chaos_active_ok && cell.delta.stalls_injected > 0;
    if (cell.axis == "obs-corrupt" || cell.axis == "all-axes")
      chaos_active_ok = chaos_active_ok && cell.delta.obs_corrupted > 0 &&
                        cell.delta.obs_invalid_rejected > 0;
    if (cell.axis == "poison" || cell.axis == "all-axes")
      chaos_active_ok = chaos_active_ok && cell.delta.poisons_injected > 0 &&
                        cell.delta.beliefs_repaired > 0;
    if (cell.axis == "clean")
      chaos_active_ok = chaos_active_ok && cell.delta.degraded_decides == 0 &&
                        cell.delta.shed == 0;
  }

  // The committed stall claim: with the guard isolating stalled sessions,
  // the fleet keeps serving >= 80% of the clean actions/second.
  const double stall_ratio =
      (clean && stall && clean->served_per_sec > 0.0)
          ? stall->served_per_sec / clean->served_per_sec
          : 0.0;
  const bool stall_ok = stall_ratio >= 0.8;

  const bool overload_ok =
      !overload.axis.empty() && !overload.aborted && overload.delta.shed > 0 &&
      overload.delta.decisions <= quota * overload.ticks;

  bool corruption_ok = !corruption.empty();
  for (const CorruptionCase& c : corruption)
    corruption_ok = corruption_ok && c.rejected && c.state_intact;

  const bool all_checks_passed = !interrupted && parity_ok && aborts_ok &&
                                 chaos_active_ok && stall_ok && overload_ok &&
                                 unguarded_poison_aborts && roundtrip_ok &&
                                 corruption_ok;

  std::printf("\nstall-axis served/sec ratio vs clean: %.3f (gate >= 0.8): %s\n",
              stall_ratio, stall_ok ? "ok" : "FAIL");
  std::printf("overload quota %zu/tick: %zu decided, %zu shed over %zu ticks: %s\n",
              quota, overload.delta.decisions, overload.delta.shed, overload.ticks,
              overload_ok ? "ok" : "FAIL");
  std::printf("all checks: %s\n", all_checks_passed ? "PASSED" : "FAILED");

  if (!out_path.empty()) {
    obs::Json::Object doc;
    doc["schema"] = "recoverd.resilience.v1";
    doc["note"] =
        "Fault-tolerant fleet runtime campaign (bench/resilience_campaign). "
        "Every cell runs the guarded FleetDriver (degradation ladder Full -> "
        "Reduced -> Cached -> Heuristic) at the given width; chaos axes inject "
        "decide stalls, corrupted observation ids, and NaN/denormal belief "
        "poisoning at chaos_rate per slot. served = lanes handed an action per "
        "measured wall-clock (fresh decisions + ladder fallbacks). Committed "
        "claims: zero aborted ticks on every axis; stall-axis served/sec >= "
        "0.8x clean; deterministic admission quota never exceeded and sheds in "
        "staleness order; Batch == Loop bitwise under guards+chaos+budget; "
        "checkpoint save/restore resumes bitwise; corrupted/mismatched "
        "checkpoints rejected without touching driver state. Absolute rates "
        "are machine-dependent; the gates are the claims.";
    doc["model"] = "emn-zombie-fleet";
    doc["simd"] = simd::describe_active_mode();
    doc["bound_size"] = static_cast<std::uint64_t>(set.size());
    doc["seed"] = static_cast<std::uint64_t>(setup.seed);
    doc["sessions"] = static_cast<std::uint64_t>(sessions);
    doc["ticks"] = static_cast<std::uint64_t>(ticks);
    doc["warmup"] = static_cast<std::uint64_t>(warmup);
    doc["chaos_rate"] = chaos_rate;
    obs::Json::Object guard;
    guard["enabled"] = fleet_options.guard.enabled;
    guard["reduced_depth"] = static_cast<std::uint64_t>(
        static_cast<std::size_t>(fleet_options.guard.reduced_depth));
    guard["promote_after"] =
        static_cast<std::uint64_t>(fleet_options.guard.promote_after);
    guard["livelock_window"] =
        static_cast<std::uint64_t>(fleet_options.guard.livelock_window);
    doc["guard"] = obs::Json(std::move(guard));
    obs::Json::Object pj;
    pj["sessions"] = static_cast<std::uint64_t>(parity_sessions);
    pj["ticks"] = static_cast<std::uint64_t>(parity_ticks);
    pj["ok"] = parity_ok;
    doc["parity"] = obs::Json(std::move(pj));
    doc["axes"] = obs::Json(std::move(rows));
    if (!overload.axis.empty()) doc["overload"] = cell_json(overload);
    obs::Json::Object oj;
    oj["tick_budget_decisions"] = static_cast<std::uint64_t>(quota);
    oj["shed_engaged"] = overload.delta.shed > 0;
    oj["quota_respected"] =
        overload.delta.decisions <= quota * std::max<std::size_t>(1, overload.ticks);
    oj["ok"] = overload_ok;
    doc["overload_gate"] = obs::Json(std::move(oj));
    obs::Json::Object sj;
    sj["served_ratio_vs_clean"] = stall_ratio;
    sj["ok"] = stall_ok;
    doc["stall_gate"] = obs::Json(std::move(sj));
    obs::Json::Object mj;
    mj["aborted"] = unguarded_poison_aborts;
    if (unguarded_poison_aborts) mj["error"] = unguarded_error;
    doc["unguarded_poison"] = obs::Json(std::move(mj));
    obs::Json::Object cj;
    cj["roundtrip_ok"] = roundtrip_ok;
    obs::Json::Array cc;
    for (const CorruptionCase& c : corruption) {
      obs::Json::Object row;
      row["case"] = c.name;
      row["rejected"] = c.rejected;
      row["state_intact"] = c.state_intact;
      row["error"] = c.error;
      cc.push_back(obs::Json(std::move(row)));
    }
    cj["corruption"] = obs::Json(std::move(cc));
    cj["ok"] = roundtrip_ok && corruption_ok;
    doc["checkpoint"] = obs::Json(std::move(cj));
    doc["interrupted"] = interrupted;
    doc["all_checks_passed"] = all_checks_passed;
    std::ofstream out(out_path);
    RD_EXPECTS(out.good(), "resilience campaign: cannot open --out file");
    obs::Json(std::move(doc)).write(out);
    out << "\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (interrupted) return 0;  // run_obs_main maps the shutdown flag to 130
  if (!all_checks_passed) {
    std::fprintf(stderr, "resilience campaign: CORRECTNESS CHECK FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known = {
      "sessions",        "ticks",        "warmup",
      "chaos-rate",      "checkpoint",   "checkpoint-every",
      "parity-sessions", "parity-ticks", "smoke",
      "out",             "top",          "seed",
      "capacity",        "branch-floor", "termination-probability",
      "bootstrap-runs",  "bootstrap-depth", "jobs",
      "memo",            "memo-max-mb",     "memo-carry"};
  for (std::string& name : recoverd::bench::robustness_flag_names())
    known.push_back(std::move(name));
  for (std::string& name : recoverd::sim::fleet_resilience_flag_names())
    known.push_back(std::move(name));
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
