// Reproduces Table 1: per-fault recovery metrics of six controllers on the
// EMN model under uniform zombie-fault injection.
//
// Flags:
//   --faults=N       injections for Most Likely / Heuristic d1 / Bounded /
//                    Oracle (default 2000; the paper ran 10000 — pass
//                    --faults=10000 to match, at ~5x the runtime)
//   --faults-d2=N    injections for Heuristic depth 2 (default 400)
//   --faults-d3=N    injections for Heuristic depth 3 (default 60 — the
//                    depth-3 tree is ~100x costlier per decision; raise for
//                    tighter confidence intervals)
//   --top=SECONDS    operator response time (default 21600 = 6 h)
//   --jobs=N         worker threads for the episode runner (default 1 =
//                    serial, the paper's accumulating-controller setup; the
//                    Oracle row is always serial)
//   --seed, --capacity, --branch-floor, --termination-probability,
//   --bootstrap-runs, --bootstrap-depth  (see bench_common)
//   --mismatch-*, --guard-policy, --decide-deadline-ms, --guard-*
//                    chaos axes and guard runtime (default off — clean
//                    campaigns are byte-identical to pre-chaos builds; see
//                    bench/robustness_campaign.cpp for the severity sweep)
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "controller/oracle_controller.hpp"
#include "util/timer.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const auto faults = static_cast<std::size_t>(args.get_int("faults", 2000));
  const auto faults_d2 = static_cast<std::size_t>(args.get_int("faults-d2", 400));
  const auto faults_d3 = static_cast<std::size_t>(args.get_int("faults-d3", 60));

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);
  sim::EpisodeConfig config = make_emn_episode_config(base, ids);
  config.mismatch = setup.mismatch;

  std::vector<TableRow> rows;

  // --- Most Likely ---
  {
    controller::MostLikelyControllerOptions opts;
    opts.observe_action = ids.topo.observe_action;
    opts.termination_probability = setup.termination_probability;
    controller::MostLikelyController c(base, opts);
    c.set_guard_options(setup.guard);
    const sim::ControllerFactory factory = [&base, opts, &setup] {
      auto controller = std::make_unique<controller::MostLikelyController>(base, opts);
      controller->set_guard_options(setup.guard);
      return controller;
    };
    rows.push_back({"Most Likely", "1",
                    run_campaign(base, c, factory, injector, faults, setup.seed, config,
                                 setup.jobs)});
    std::cerr << "most-likely done\n";
  }

  // --- Heuristic depths 1..3 ---
  const std::size_t heuristic_faults[3] = {faults, faults_d2, faults_d3};
  for (int depth = 1; depth <= 3; ++depth) {
    controller::HeuristicControllerOptions opts;
    opts.tree_depth = depth;
    opts.termination_probability = setup.termination_probability;
    opts.branch_floor = setup.branch_floor;
    controller::HeuristicController c(base, opts);
    c.set_guard_options(setup.guard);
    const sim::ControllerFactory factory = [&base, opts, &setup] {
      auto controller = std::make_unique<controller::HeuristicController>(base, opts);
      controller->set_guard_options(setup.guard);
      return controller;
    };
    const std::size_t n = heuristic_faults[depth - 1];
    rows.push_back({"Heuristic", std::to_string(depth),
                    run_campaign(base, c, factory, injector, n, setup.seed, config,
                                 setup.jobs)});
    std::cerr << "heuristic d" << depth << " done\n";
  }

  // --- Bounded (depth 1, bootstrapped per §5) ---
  {
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
    controller::BootstrapOptions boot;
    boot.iterations = setup.bootstrap_runs;
    boot.tree_depth = setup.bootstrap_depth;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = setup.seed;
    boot.branch_floor = setup.branch_floor;
    const Belief reference = Belief::uniform(recovery.num_states());
    Timer bootstrap_timer;
    controller::bootstrap_bounds(recovery, set, reference, boot);
    std::cerr << "bootstrap done in " << bootstrap_timer.elapsed_ms() << " ms, |B|="
              << set.size() << "\n";

    controller::BoundedControllerOptions opts;
    opts.tree_depth = 1;
    opts.branch_floor = setup.branch_floor;
    opts.memo = setup.memo;
    opts.memo_max_mb = setup.memo_max_mb;
    controller::BoundedController c(recovery, set, opts);
    c.set_guard_options(setup.guard);
    // Parallel episodes each start from a private copy of the warm
    // bootstrapped set (snapshotted here, before the serial run mutates it).
    const sim::ControllerFactory factory = [&recovery, set, opts, &setup] {
      auto controller = controller::BoundedController::make_owning(recovery, set, opts);
      controller->set_guard_options(setup.guard);
      return controller;
    };
    rows.push_back({"Bounded", "1",
                    run_campaign(base, c, factory, injector, faults, setup.seed, config,
                                 setup.jobs)});
    std::cerr << "bounded done, final |B|=" << set.size() << "\n";
  }

  // --- Oracle ---
  {
    sim::EpisodeConfig oracle_config = config;
    oracle_config.initial_observation = false;
    // run_experiment constructs a fresh Environment per episode, so the
    // oracle reads the true state through an indirection the harness owns.
    // Simplest faithful wiring: run episodes manually.
    sim::ExperimentResult result;
    Rng master(setup.seed);
    for (std::size_t i = 0; i < faults; ++i) {
      Rng episode_rng = master.split();
      sim::Environment env(base, episode_rng.split());
      controller::OracleController oracle(base, [&env] { return env.true_state(); });
      const StateId fault = injector.sample(episode_rng);
      result.add(run_episode(env, oracle, fault, oracle_config));
    }
    rows.push_back({"Oracle", "-", result});
  }

  std::cout << "=== Table 1: Fault Injection Results (EMN model) ===\n\n";
  print_table1(std::cout, rows, faults);
  std::cout << "\nNotes: heuristic depth 2 used " << faults_d2 << " injections, depth 3 "
            << faults_d3 << " (adjust with --faults-d2/--faults-d3). Absolute\n"
            << "algorithm times are machine-dependent; the paper's claims are the\n"
            << "orderings: bounded cost < heuristic cost at every depth, bounded\n"
            << "decision time < heuristic depth-2 time, and no controller ever\n"
            << "quits without recovering the system (Unrecovered column).\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known = {
      "faults", "faults-d2", "faults-d3", "top", "seed", "capacity",
      "branch-floor", "termination-probability", "bootstrap-runs",
      "bootstrap-depth", "jobs", "memo", "memo-max-mb"};
  const std::vector<std::string> robustness = recoverd::bench::robustness_flag_names();
  known.insert(known.end(), robustness.begin(), robustness.end());
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
