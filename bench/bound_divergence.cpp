// Reproduces the §3.1 comparison of undiscounted lower bounds: on recovery
// models the RA-Bound converges while the BI-POMDP bound (min-action value)
// diverges in both model classes, and the blind-policy bounds diverge for
// recovery actions (the terminate transform repairs only the aT policy's
// bound). Also demonstrates that with discounting (β < 1) all three
// converge — which is why prior work did not notice the gap.
//
// Flags: --top=SECONDS --beta=0.9 (discounted comparison column).
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/comparison_bounds.hpp"
#include "bounds/ra_bound.hpp"
#include "models/two_server.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

std::string blind_summary(const bounds::BlindPolicyBoundResult& blind, const Pomdp& model) {
  std::size_t finite = 0;
  for (const auto& b : blind.per_action) {
    if (b.converged()) ++finite;
  }
  std::string out = std::to_string(finite) + "/" +
                    std::to_string(blind.per_action.size()) + " finite";
  if (model.has_terminate_action() &&
      blind.per_action[model.terminate_action()].converged()) {
    out += " (aT finite)";
  }
  return out;
}

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const double beta = args.get_double("beta", 0.9);

  struct ModelCase {
    std::string name;
    Pomdp model;
  };
  std::vector<ModelCase> cases;
  cases.push_back({"two-server (with notification)",
                   models::make_two_server_with_notification()});
  cases.push_back({"two-server (terminate, t_op=40)",
                   models::make_two_server_without_notification(40.0)});
  cases.push_back({"EMN (terminate, t_op=" +
                       std::to_string(static_cast<long>(setup.emn.operator_response_time)) +
                       "s)",
                   models::make_emn_recovery_model(setup.emn)});

  std::cout << "=== §3.1: Lower-bound convergence on undiscounted recovery models ===\n\n";
  TextTable table;
  table.set_header({"Model", "RA-Bound", "BI-POMDP", "Blind policies"});
  for (const auto& c : cases) {
    const auto ra = bounds::compute_ra_bound(c.model.mdp());
    const auto bi = bounds::compute_bi_bound(c.model.mdp());
    const auto blind = bounds::compute_blind_policy_bounds(c.model.mdp());
    table.add_row({c.name, linalg::to_string(ra.status), linalg::to_string(bi.status),
                   blind_summary(blind, c.model)});
  }
  table.print(std::cout);

  std::cout << "\nWith discounting (beta = " << beta
            << ") every bound converges — the literature's setting:\n\n";
  TextTable disc;
  disc.set_header({"Model", "RA-Bound", "BI-POMDP", "Blind policies"});
  ValueIterationOptions vi;
  vi.beta = beta;
  for (const auto& c : cases) {
    const auto ra = bounds::compute_ra_bound_discounted(c.model.mdp(), beta);
    const auto bi = bounds::compute_bi_bound(c.model.mdp(), vi);
    const auto blind = bounds::compute_blind_policy_bounds(c.model.mdp(), vi);
    disc.add_row({c.name, linalg::to_string(ra.status), linalg::to_string(bi.status),
                  blind_summary(blind, c.model)});
  }
  disc.print(std::cout);

  std::cout << "\nPaper claims reproduced: RA-Bound is the only bound that converges on\n"
            << "undiscounted notification-transformed recovery models; the terminate\n"
            << "transform makes exactly the blind-aT bound finite (§3.1).\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"top", "beta", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
