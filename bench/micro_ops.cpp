// Micro-costs of the controller's building blocks on the EMN model
// (§4.1/§4.3): belief updates, successor enumeration, incremental bound
// updates as a function of |B|, and Max-Avg tree expansion by depth.
#include <benchmark/benchmark.h>

#include <limits>

#include "gbench_main.hpp"

#include "bounds/incremental_update.hpp"
#include "bounds/ra_bound.hpp"
#include "models/emn.hpp"
#include "pomdp/belief_batch.hpp"
#include "pomdp/bellman.hpp"
#include "pomdp/expansion.hpp"
#include "pomdp/sampling.hpp"
#include "util/rng.hpp"

namespace recoverd::bench {
namespace {

const Pomdp& emn_recovery() {
  static const Pomdp model = models::make_emn_recovery_model();
  return model;
}

const models::EmnIds& ids() {
  static const models::EmnIds value = models::emn_ids(emn_recovery());
  return value;
}

Belief uniform_fault_belief() {
  const Pomdp& p = emn_recovery();
  std::vector<StateId> faults;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!p.mdp().is_goal(s) && s != p.terminate_state()) faults.push_back(s);
  }
  return Belief::uniform_over(p.num_states(), faults);
}

void BM_BeliefUpdate(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  Rng rng(3);
  const ActionId observe = ids().topo.observe_action;
  for (auto _ : state) {
    const ObsId obs = sample_observation(p, rng.uniform_index(p.num_states()), observe, rng);
    const auto upd = update_belief(p, pi, observe, obs);
    benchmark::DoNotOptimize(upd.has_value());
  }
}
BENCHMARK(BM_BeliefUpdate);

void BM_BeliefSuccessors(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  const ActionId observe = ids().topo.observe_action;
  const double floor = static_cast<double>(state.range(0)) * 1e-3;
  for (auto _ : state) {
    const auto branches = belief_successors(p, pi, observe, floor);
    benchmark::DoNotOptimize(branches.size());
  }
  state.counters["floor_milli"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BeliefSuccessors)->Arg(0)->Arg(1)->Arg(10);

void BM_IncrementalUpdate(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  // Pre-grow the bound set to the requested |B| with random-belief backups.
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  Rng rng(11);
  while (set.size() < static_cast<std::size_t>(state.range(0))) {
    std::vector<double> raw(p.num_states());
    for (auto& v : raw) v = rng.uniform01() + 1e-6;
    const auto before = set.size();
    bounds::improve_at(p, set, Belief(raw));
    if (set.size() == before) break;  // saturated below the target size
  }
  for (auto _ : state) {
    const auto backup = bounds::backup_vector(p, set, pi);
    benchmark::DoNotOptimize(backup.data());
  }
  state.counters["bound_vectors"] = static_cast<double>(set.size());
}
BENCHMARK(BM_IncrementalUpdate)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// Headline decision-latency number (BENCH_expansion.json): one depth-d best
// action on the EMN model with the RA-Bound leaf, in the exact configuration
// BoundedController::decide() runs — a directly-owned engine, the
// transposition cache on, a devirtualized ScratchBoundLeaf armed and flushed
// around each decision. (The legacy std::function wrapper path this used to
// measure lives on in BM_ExpansionWrapper.)
void BM_TreeExpansion(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  bounds::BoundSet::EvalScratch scratch;
  const bounds::ScratchBoundLeaf leaf{&set, &scratch};
  ExpansionEngine engine(p);
  ExpansionOptions opts;
  opts.branch_floor = 1e-2;
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    set.begin_eval(scratch);
    const auto best = engine.best_action(
        pi.probabilities(), depth, SpanLeaf::of_batched(leaf, set.size() + 1), opts);
    set.flush_eval(scratch);
    benchmark::DoNotOptimize(best.value);
  }
  state.counters["arena_bytes"] = static_cast<double>(engine.arena_bytes());
}
BENCHMARK(BM_TreeExpansion)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

// Depth x branch-floor sweep of the Max-Avg expansion, compatibility
// wrapper path: thread-local engine + std::function leaf + Belief
// construction at every leaf. Args: (depth, floor in thousandths).
void BM_ExpansionWrapper(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  const LeafEvaluator leaf = [&set](const Belief& b) {
    return set.evaluate(b.probabilities());
  };
  const int depth = static_cast<int>(state.range(0));
  const double floor = static_cast<double>(state.range(1)) * 1e-3;
  for (auto _ : state) {
    const auto best = bellman_best_action(p, pi, depth, leaf, 1.0, kInvalidId, floor);
    benchmark::DoNotOptimize(best.value);
  }
  state.counters["floor_milli"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_ExpansionWrapper)
    ->ArgsProduct({{1, 2, 3}, {1, 10}})
    ->Unit(benchmark::kMicrosecond);

// Same sweep through a directly-owned ExpansionEngine with a devirtualized
// SpanLeaf — the controllers' configuration. The delta against
// BM_ExpansionWrapper is the residual wrapper overhead (std::function leaf
// + per-leaf Belief copies); the delta against the committed pre-refactor
// BENCH_expansion.json baseline is the full engine win.
void BM_ExpansionEngine(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  const auto leaf_fn = [&set](std::span<const double> posterior) {
    return set.evaluate(posterior);
  };
  ExpansionEngine engine(p);
  ExpansionOptions opts;
  opts.branch_floor = static_cast<double>(state.range(1)) * 1e-3;
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto best =
        engine.best_action(pi.probabilities(), depth, SpanLeaf::of(leaf_fn), opts);
    benchmark::DoNotOptimize(best.value);
  }
  state.counters["floor_milli"] = static_cast<double>(state.range(1));
  state.counters["arena_bytes"] = static_cast<double>(engine.arena_bytes());
}
BENCHMARK(BM_ExpansionEngine)
    ->ArgsProduct({{1, 2, 3}, {1, 10}})
    ->Unit(benchmark::kMicrosecond);

// The controllers' full hot-path configuration — ScratchBoundLeaf (pruned
// scan + warm start + batched frontiers) on a directly-owned engine — with
// the transposition cache on (arg 1 = 1) or off (arg 1 = 0). The ratio per
// depth is the headline number of DESIGN.md §11. Args: (depth, memo).
void BM_ExpansionMemo(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  const Belief pi = uniform_fault_belief();
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  bounds::BoundSet::EvalScratch scratch;
  set.begin_eval(scratch);
  const bounds::ScratchBoundLeaf leaf{&set, &scratch};
  ExpansionEngine engine(p);
  ExpansionOptions opts;
  opts.branch_floor = 1e-2;
  opts.memo = state.range(1) != 0;
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto best = engine.best_action(
        pi.probabilities(), depth, SpanLeaf::of_batched(leaf, set.size() + 1), opts);
    benchmark::DoNotOptimize(best.value);
  }
  set.flush_eval(scratch);
  state.counters["memo"] = static_cast<double>(state.range(1));
  state.counters["arena_bytes"] = static_cast<double>(engine.arena_bytes());
}
BENCHMARK(BM_ExpansionMemo)
    ->ArgsProduct({{1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// A fleet-like belief population: a small pool of distinct beliefs
// (random action/observation histories off the uniform fault belief, long
// enough to concentrate), with every lane drawn from the pool. Mirrors the
// steady-state FleetDriver class structure the throughput campaign
// measures — a 10^4-session EMN fleet decides ~600 distinct root beliefs
// per tick, so lanes coincide heavily and successors overlap across roots
// and levels.
BeliefBatch make_fleet_like_batch(const Pomdp& p, std::size_t lanes) {
  const Belief root = uniform_fault_belief();
  Rng rng(41);
  const std::size_t pool_size = std::max<std::size_t>(1, lanes / 32);
  std::vector<Belief> pool;
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    Belief b = root;
    const std::size_t steps = 4 + rng.uniform_index(9);  // 4..12 updates
    for (std::size_t k = 0; k < steps; ++k) {
      const ActionId a = rng.uniform_index(p.num_actions());
      const StateId s = sample_state(b, rng);
      const StateId next = sample_transition(p.mdp(), s, a, rng);
      const ObsId o = sample_observation(p, next, a, rng);
      if (auto u = update_belief(p, b, a, o)) b = std::move(u->next);
    }
    pool.push_back(std::move(b));
  }
  BeliefBatch batch(p.num_states());
  batch.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    batch.push_back(pool[rng.uniform_index(pool.size())], lane);
  }
  return batch;
}

// Whole-batch decide() on that population: the deep pipeline (DESIGN.md
// §16 — level-wise frontier expansion with global canonicalization and one
// giant leaf batch) against the classic per-class walks (arg 2 = 0, the
// §13 path with the transposition cache on). Bit-identical results; the
// per-depth ratio is the headline §16 number. Args: (depth, lanes, deep).
void BM_DeepBatch(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  bounds::BoundSet::EvalScratch scratch;
  const bounds::ScratchBoundLeaf leaf{&set, &scratch};
  ExpansionEngine engine(p);
  ExpansionOptions opts;
  opts.branch_floor = 1e-2;
  const int depth = static_cast<int>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const bool deep = state.range(2) != 0;
  const BeliefBatch batch = make_fleet_like_batch(p, lanes);
  std::vector<ActionValue> best;
  for (auto _ : state) {
    set.begin_eval(scratch);
    if (deep) {
      engine.decide_batch_deep(batch, depth,
                               SpanLeaf::of_batched(leaf, set.size() + 1), opts, best);
    } else {
      engine.decide_batch(batch, depth, SpanLeaf::of_batched(leaf, set.size() + 1),
                          opts, best);
    }
    set.flush_eval(scratch);
    benchmark::DoNotOptimize(best.data());
  }
  state.counters["deep"] = static_cast<double>(state.range(2));
  state.counters["arena_bytes"] = static_cast<double>(engine.arena_bytes());
}
BENCHMARK(BM_DeepBatch)
    ->ArgsProduct({{2, 3}, {256, 4096}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// The Eq. 6 leaf kernel in isolation, on synthetic hyperplane sets of
// `planes` vectors over `states` dimensions. "Naive" is the pre-PR 5
// two-pass scan (full dot per plane, then re-dot the winner); "Pruned" is
// BoundSet::evaluate with the max-coefficient skip bound and warm start;
// "Batch" runs whole 64-belief frontiers through evaluate_batch. All three
// return bit-identical values. Args: (planes, states).
bounds::BoundSet make_synthetic_set(std::size_t planes, std::size_t states) {
  bounds::BoundSet set(states);
  Rng rng(17);
  for (std::size_t i = 0; i < planes; ++i) {
    bounds::BoundVector v(states);
    // Negative costs-to-go of different magnitudes, so the running max
    // separates planes the way improved recovery bounds do.
    const double scale = 1.0 + rng.uniform01() * 9.0;
    for (auto& x : v) x = -scale * (0.1 + rng.uniform01());
    set.add(std::move(v));
  }
  return set;
}

std::vector<double> make_belief_rows(std::size_t count, std::size_t states) {
  Rng rng(23);
  std::vector<double> rows(count * states);
  for (std::size_t i = 0; i < count; ++i) {
    double sum = 0.0;
    for (std::size_t s = 0; s < states; ++s) {
      rows[i * states + s] = rng.uniform01();
      sum += rows[i * states + s];
    }
    for (std::size_t s = 0; s < states; ++s) rows[i * states + s] /= sum;
  }
  return rows;
}

constexpr std::size_t kEvalFrontier = 64;

void BM_BoundSetEvaluateNaive(benchmark::State& state) {
  const auto planes = static_cast<std::size_t>(state.range(0));
  const auto states = static_cast<std::size_t>(state.range(1));
  const bounds::BoundSet set = make_synthetic_set(planes, states);
  const std::vector<double> rows = make_belief_rows(kEvalFrontier, states);
  std::size_t row = 0;
  for (auto _ : state) {
    const std::span<const double> pi(rows.data() + row * states, states);
    row = (row + 1) % kEvalFrontier;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < set.size(); ++i) {
      double dot = 0.0;
      const bounds::BoundVector& v = set.vector_at(i);
      for (std::size_t s = 0; s < states; ++s) dot += v[s] * pi[s];
      best = std::max(best, dot);
    }
    benchmark::DoNotOptimize(best);
  }
  state.counters["planes"] = static_cast<double>(planes);
}

void BM_BoundSetEvaluatePruned(benchmark::State& state) {
  const auto planes = static_cast<std::size_t>(state.range(0));
  const auto states = static_cast<std::size_t>(state.range(1));
  const bounds::BoundSet set = make_synthetic_set(planes, states);
  const std::vector<double> rows = make_belief_rows(kEvalFrontier, states);
  bounds::BoundSet::EvalScratch scratch;
  set.begin_eval(scratch);
  std::size_t row = 0;
  for (auto _ : state) {
    const std::span<const double> pi(rows.data() + row * states, states);
    row = (row + 1) % kEvalFrontier;
    benchmark::DoNotOptimize(set.evaluate(pi, scratch));
  }
  set.flush_eval(scratch);
  state.counters["planes"] = static_cast<double>(planes);
}

void BM_BoundSetEvaluateBatch(benchmark::State& state) {
  const auto planes = static_cast<std::size_t>(state.range(0));
  const auto states = static_cast<std::size_t>(state.range(1));
  const bounds::BoundSet set = make_synthetic_set(planes, states);
  const std::vector<double> rows = make_belief_rows(kEvalFrontier, states);
  std::vector<double> out(kEvalFrontier);
  bounds::BoundSet::EvalScratch scratch;
  set.begin_eval(scratch);
  for (auto _ : state) {
    set.evaluate_batch(rows.data(), kEvalFrontier, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  set.flush_eval(scratch);
  state.counters["planes"] = static_cast<double>(planes);
  // Per-belief time, comparable to the other two variants.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kEvalFrontier));
}

#define RD_BOUNDSET_EVAL_ARGS ArgsProduct({{8, 64, 256}, {16, 128}})
BENCHMARK(BM_BoundSetEvaluateNaive)->RD_BOUNDSET_EVAL_ARGS;
BENCHMARK(BM_BoundSetEvaluatePruned)->RD_BOUNDSET_EVAL_ARGS;
BENCHMARK(BM_BoundSetEvaluateBatch)->RD_BOUNDSET_EVAL_ARGS;
#undef RD_BOUNDSET_EVAL_ARGS

void BM_RaBoundEmn(benchmark::State& state) {
  const Pomdp& p = emn_recovery();
  for (auto _ : state) {
    const auto ra = bounds::compute_ra_bound(p.mdp());
    benchmark::DoNotOptimize(ra.values.data());
  }
}
BENCHMARK(BM_RaBoundEmn);

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  return recoverd::bench::gbench_main_with_metrics(argc, argv);
}
