// Shared setup for the experiment benches: the §5 EMN configuration, the
// controller roster of Table 1, and table/CSV output helpers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "controller/guard.hpp"
#include "models/emn.hpp"
#include "sim/experiment.hpp"
#include "sim/mismatch_injector.hpp"
#include "util/cli.hpp"

namespace recoverd::bench {

/// Experiment-wide parameters shared by the Fig. 5 / Table 1 benches,
/// parsed from --flags with the paper's §5 values as defaults.
struct EmnExperimentSetup {
  models::EmnConfig emn;
  std::uint64_t seed = 2006;
  std::size_t bound_capacity = 64;  ///< finite storage per §4.3 (0 = unlimited)
  double branch_floor = 1e-2;      ///< tree pruning for the 128-observation model
  double termination_probability = 0.9999;
  std::size_t bootstrap_runs = 10;
  int bootstrap_depth = 2;
  std::size_t jobs = 1;  ///< worker threads for the episode runner (--jobs)
  bool memo = true;      ///< expansion transposition cache (--memo=0 disables)
  std::size_t memo_max_mb = 64;  ///< per-workspace cache cap (--memo-max-mb)
  /// Chaos axes (--mismatch-*) and guard runtime (--guard-*,
  /// --decide-deadline-ms); all default off, keeping clean campaigns exact.
  sim::MismatchOptions mismatch;
  controller::GuardOptions guard;
};

/// Parses the common flags (--top, --seed, --capacity, --branch-floor,
/// --termination-probability, --bootstrap-runs, --bootstrap-depth, --jobs,
/// --memo, --memo-max-mb) plus the chaos/guard flags (see
/// parse_mismatch_options / parse_guard_options).
EmnExperimentSetup parse_emn_setup(const CliArgs& args);

/// The chaos/guard flag keys, for require_known() lists.
std::vector<std::string> robustness_flag_names();

/// Runs a fault-injection campaign with `jobs` workers. jobs == 1 drives
/// `serial_controller` through the serial runner — the paper's
/// configuration, where one long-lived controller carries its online bound
/// improvements across episodes. jobs > 1 switches to the parallel runner:
/// fresh per-episode controllers from `factory` on pre-derived RNG streams,
/// whose aggregates are identical for every worker count (see DESIGN.md §8)
/// though not to the accumulating serial configuration.
sim::ExperimentResult run_campaign(const Pomdp& env_model,
                                   controller::RecoveryController& serial_controller,
                                   const sim::ControllerFactory& factory,
                                   const sim::FaultInjector& injector,
                                   std::size_t episodes, std::uint64_t seed,
                                   const sim::EpisodeConfig& config, std::size_t jobs);

/// The §5 fault-injection campaign: zombie faults only, uniform.
sim::FaultInjector make_zombie_injector(const Pomdp& base_model,
                                        const models::EmnIds& ids);

/// Episode configuration: the 13-fault uniform initial belief, initial
/// monitor reading, observe action.
sim::EpisodeConfig make_emn_episode_config(const Pomdp& base_model,
                                           const models::EmnIds& ids);

/// One row of Table 1-style output.
struct TableRow {
  std::string algorithm;
  std::string depth;
  sim::ExperimentResult result;
};

/// Prints measured rows next to the paper's published values.
void print_table1(std::ostream& os, const std::vector<TableRow>& rows,
                  std::size_t faults_note);

}  // namespace recoverd::bench
