// Model-mismatch robustness campaign: sweeps the chaos axes of
// sim/mismatch_injector.hpp over increasing severities and reports how
// gracefully each controller degrades when the world stops matching the
// POMDP it plans with. The paper's experiments (Table 1) assume a faithful
// model; this bench measures the regime a deployed recovery daemon actually
// faces.
//
// Tiers: a clean baseline, observation corruption (ε ∈ {0.02, 0.05, 0.10}),
// silent action failures (p ∈ {0.10, 0.25, 0.50}), transition jitter
// (δ ∈ {0.05, 0.15, 0.30}), and a degraded-channel tier combining
// observation drops with stuck-at monitor outages. Each tier runs the
// Most Likely, Heuristic d1, and bootstrapped Bounded d1 controllers with
// the guard runtime enabled (renormalize mismatch policy, livelock window —
// override with --guard-*).
//
// Flags:
//   --faults=N          injections per (tier, controller) cell (default 300)
//   --max-steps=N       per-episode step cap (default 300; hitting it counts
//                       the episode as truncated, reported explicitly)
//   --guard-policy=P    ignore|renormalize|reset-prior|escalate
//                       (default renormalize — the campaign's point is to
//                       measure the hardened runtime)
//   --guard-livelock-window=N  decides without bound improvement before the
//                       bounded controller escalates to aT (default 64)
//   --decide-deadline-ms, --guard-deadline-overruns  deadline ladder knobs
//   --out=FILE          write the per-tier curves as JSON
//                       (schema recoverd.robustness.v1)
//   --top, --seed, --capacity, --branch-floor, --termination-probability,
//   --bootstrap-runs, --bootstrap-depth, --jobs, --metrics-out
//                       as in the other benches
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

struct Scenario {
  std::string axis;      ///< "baseline", "obs-flip", "action-fail", ...
  double severity;       ///< the swept knob's value (0 for baseline)
  sim::MismatchOptions mismatch;
};

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"baseline", 0.0, {}});
  for (double eps : {0.02, 0.05, 0.10}) {
    Scenario s{"obs-flip", eps, {}};
    s.mismatch.obs_flip_rate = eps;
    scenarios.push_back(s);
  }
  for (double p : {0.10, 0.25, 0.50}) {
    Scenario s{"action-fail", p, {}};
    s.mismatch.action_fail_rate = p;
    scenarios.push_back(s);
  }
  for (double delta : {0.05, 0.15, 0.30}) {
    Scenario s{"transition-jitter", delta, {}};
    s.mismatch.transition_jitter = delta;
    scenarios.push_back(s);
  }
  // Degraded channel: a third of fresh readings replaced by stale ones plus
  // occasional multi-step stuck-at outages of the whole monitor bank.
  {
    Scenario s{"degraded-channel", 0.30, {}};
    s.mismatch.obs_drop_rate = 0.30;
    s.mismatch.stuck_rate = 0.02;
    s.mismatch.stuck_steps = 8;
    scenarios.push_back(s);
  }
  return scenarios;
}

struct CellResult {
  std::string controller;
  sim::ExperimentResult result;
  std::uint64_t escalations = 0;  ///< guard escalations during the cell
};

int run(const CliArgs& args) {
  EmnExperimentSetup setup = parse_emn_setup(args);
  // Campaign-specific guard defaults: the hardened runtime is the object
  // under test, so renormalize + livelock detection are on unless the
  // caller explicitly picks something else.
  setup.guard.mismatch_policy = controller::parse_guard_policy(args.get_choice(
      "guard-policy", "renormalize",
      {"ignore", "renormalize", "reset-prior", "escalate"}));
  setup.guard.livelock_window =
      static_cast<std::size_t>(args.get_int("guard-livelock-window", 64));
  const auto faults = static_cast<std::size_t>(args.get_int("faults", 300));
  const auto max_steps = static_cast<std::size_t>(args.get_int("max-steps", 300));
  RD_EXPECTS(faults >= 1, "robustness_campaign: --faults must be >= 1");
  RD_EXPECTS(max_steps >= 1, "robustness_campaign: --max-steps must be >= 1");

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);
  sim::EpisodeConfig base_config = make_emn_episode_config(base, ids);
  base_config.max_steps = max_steps;

  // One clean bootstrap; every bounded cell starts from a copy of this warm
  // set so tiers stay independent and comparable.
  bounds::BoundSet warm_set =
      bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
  {
    controller::BootstrapOptions boot;
    boot.iterations = setup.bootstrap_runs;
    boot.tree_depth = setup.bootstrap_depth;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = setup.seed;
    boot.branch_floor = setup.branch_floor;
    controller::bootstrap_bounds(recovery, warm_set,
                                 Belief::uniform(recovery.num_states()), boot);
    std::cerr << "bootstrap done, |B|=" << warm_set.size() << "\n";
  }

  controller::MostLikelyControllerOptions ml_opts;
  ml_opts.observe_action = ids.topo.observe_action;
  ml_opts.termination_probability = setup.termination_probability;

  controller::HeuristicControllerOptions h_opts;
  h_opts.tree_depth = 1;
  h_opts.termination_probability = setup.termination_probability;
  h_opts.branch_floor = setup.branch_floor;

  controller::BoundedControllerOptions b_opts;
  b_opts.tree_depth = 1;
  b_opts.branch_floor = setup.branch_floor;
  b_opts.memo = setup.memo;
  b_opts.memo_max_mb = setup.memo_max_mb;

  obs::Counter& escalation_counter =
      obs::metrics().counter("controller.guard.escalations");

  const std::vector<Scenario> scenarios = make_scenarios();
  std::vector<std::vector<CellResult>> cells(scenarios.size());

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    sim::EpisodeConfig config = base_config;
    config.mismatch = scenario.mismatch;

    const auto run_cell = [&](const std::string& name,
                              controller::BeliefTrackingController& serial,
                              const sim::ControllerFactory& factory) {
      const std::uint64_t escalations_before = escalation_counter.value();
      serial.set_guard_options(setup.guard);
      CellResult cell;
      cell.controller = name;
      cell.result = run_campaign(base, serial, factory, injector, faults, setup.seed,
                                 config, setup.jobs);
      cell.escalations = escalation_counter.value() - escalations_before;
      cells[i].push_back(cell);
      std::cerr << scenario.axis << "@" << scenario.severity << " " << name
                << ": cost=" << cell.result.cost.mean()
                << " unrecovered=" << cell.result.unrecovered
                << " truncated=" << cell.result.truncated() << "\n";
    };

    {
      controller::MostLikelyController c(base, ml_opts);
      const sim::ControllerFactory factory = [&] {
        auto controller = std::make_unique<controller::MostLikelyController>(base, ml_opts);
        controller->set_guard_options(setup.guard);
        return controller;
      };
      run_cell("MostLikely", c, factory);
    }
    {
      controller::HeuristicController c(base, h_opts);
      const sim::ControllerFactory factory = [&] {
        auto controller = std::make_unique<controller::HeuristicController>(base, h_opts);
        controller->set_guard_options(setup.guard);
        return controller;
      };
      run_cell("Heuristic(d=1)", c, factory);
    }
    {
      bounds::BoundSet set = warm_set;  // private copy per tier
      controller::BoundedController c(recovery, set, b_opts);
      const sim::ControllerFactory factory = [&] {
        auto controller =
            controller::BoundedController::make_owning(recovery, warm_set, b_opts);
        controller->set_guard_options(setup.guard);
        return controller;
      };
      run_cell("Bounded(d=1)", c, factory);
    }
  }

  // --- text report ---
  std::cout << "=== Robustness campaign: model-mismatch severity sweep (EMN) ===\n\n"
            << "guard policy: " << controller::guard_policy_name(setup.guard.mismatch_policy)
            << ", livelock window: " << setup.guard.livelock_window
            << ", injections per cell: " << faults << ", max steps: " << max_steps
            << "\n\n";
  TextTable table;
  table.set_header({"Axis", "Severity", "Controller", "Cost", "RecoveryRate",
                    "Unrecovered", "Truncated", "Escalations"});
  std::size_t total_episodes = 0;
  std::size_t total_truncated = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (const CellResult& cell : cells[i]) {
      const double rate =
          1.0 - static_cast<double>(cell.result.unrecovered) /
                    static_cast<double>(cell.result.episodes);
      table.add_row({scenarios[i].axis, TextTable::num(scenarios[i].severity, 2),
                     cell.controller, TextTable::num(cell.result.cost.mean()),
                     TextTable::num(rate, 4), std::to_string(cell.result.unrecovered),
                     std::to_string(cell.result.truncated()),
                     std::to_string(cell.escalations)});
      total_episodes += cell.result.episodes;
      total_truncated += cell.result.truncated();
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery episode ended in recovery, guard escalation, or counted\n"
            << "truncation: " << total_episodes << " episodes, " << total_truncated
            << " truncated, zero aborts.\n";

  // --- JSON curves ---
  if (args.has("out")) {
    obs::Json::Array scenario_rows;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      obs::Json::Array controller_rows;
      for (const CellResult& cell : cells[i]) {
        obs::Json::Object row;
        row["controller"] = cell.controller;
        row["cost_mean"] = cell.result.cost.mean();
        row["recovery_time_mean"] = cell.result.recovery_time.mean();
        row["recovery_rate"] = 1.0 - static_cast<double>(cell.result.unrecovered) /
                                         static_cast<double>(cell.result.episodes);
        row["episodes"] = static_cast<std::uint64_t>(cell.result.episodes);
        row["unrecovered"] = static_cast<std::uint64_t>(cell.result.unrecovered);
        row["truncated"] = static_cast<std::uint64_t>(cell.result.truncated());
        row["guard_escalations"] = cell.escalations;
        controller_rows.push_back(obs::Json(std::move(row)));
      }
      obs::Json::Object scenario_row;
      scenario_row["axis"] = scenarios[i].axis;
      scenario_row["severity"] = scenarios[i].severity;
      scenario_row["controllers"] = obs::Json(std::move(controller_rows));
      scenario_rows.push_back(obs::Json(std::move(scenario_row)));
    }
    obs::Json::Object doc;
    doc["schema"] = "recoverd.robustness.v1";
    doc["model"] = "emn";
    doc["faults_per_cell"] = static_cast<std::uint64_t>(faults);
    doc["max_steps"] = static_cast<std::uint64_t>(max_steps);
    doc["seed"] = setup.seed;
    doc["guard_policy"] = controller::guard_policy_name(setup.guard.mismatch_policy);
    doc["guard_livelock_window"] =
        static_cast<std::uint64_t>(setup.guard.livelock_window);
    doc["scenarios"] = obs::Json(std::move(scenario_rows));

    const std::string path = args.get_string("out", "");
    std::ofstream out(path);
    RD_EXPECTS(out.good(), "robustness_campaign: cannot open --out file " + path);
    obs::Json(std::move(doc)).write(out);
    out << "\n";
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known = {
      "out",         "faults",
      "max-steps",   "top",         "seed",
      "capacity",    "branch-floor", "termination-probability",
      "bootstrap-runs", "bootstrap-depth", "jobs", "memo", "memo-max-mb"};
  const std::vector<std::string> robustness = recoverd::bench::robustness_flag_names();
  known.insert(known.end(), robustness.begin(), robustness.end());
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
