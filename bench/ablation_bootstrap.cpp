// Ablation of the bootstrap configuration (§5 uses "10 runs of depth 2"
// before the Table 1 campaign): how much does the warm-up phase matter, and
// does its depth pay for itself? Reports the warmed bound at the uniform
// belief, the bound-set size, and the bounded controller's campaign metrics
// for each (runs, depth) cell.
//
// Flags: --faults=N (default 300) plus the common EMN flags.
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const auto faults = static_cast<std::size_t>(args.get_int("faults", 300));

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);
  const sim::EpisodeConfig config = make_emn_episode_config(base, ids);
  const Belief reference = Belief::uniform(recovery.num_states());

  struct Cell {
    std::size_t runs;
    int depth;
  };
  const Cell grid[] = {{0, 1}, {5, 1}, {10, 1}, {20, 1}, {10, 2}, {20, 2}};

  std::cout << "=== Ablation: bootstrap runs x depth (bounded controller, EMN) ===\n\n";
  TextTable table;
  table.set_header({"Runs", "Depth", "WarmedBound", "|B| warm", "Cost",
                    "MonitorCalls", "Unrecovered"});

  for (const Cell& cell : grid) {
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
    if (cell.runs > 0) {
      controller::BootstrapOptions boot;
      boot.iterations = cell.runs;
      boot.tree_depth = cell.depth;
      boot.observe_action = ids.topo.observe_action;
      boot.seed = setup.seed;
      boot.branch_floor = setup.branch_floor;
      controller::bootstrap_bounds(recovery, set, reference, boot);
    }
    const double warmed = set.evaluate(reference.probabilities());
    const std::size_t warm_size = set.size();

    controller::BoundedControllerOptions opts;
    opts.branch_floor = setup.branch_floor;
    controller::BoundedController c(recovery, set, opts);
    const sim::ControllerFactory factory = [&recovery, set, opts] {
      return controller::BoundedController::make_owning(recovery, set, opts);
    };
    const auto result =
        run_campaign(base, c, factory, injector, faults, setup.seed, config, setup.jobs);

    table.add_row({std::to_string(cell.runs), std::to_string(cell.depth),
                   TextTable::num(warmed), std::to_string(warm_size),
                   TextTable::num(result.cost.mean()),
                   TextTable::num(result.monitor_calls.mean()),
                   std::to_string(result.unrecovered)});
    std::cerr << "runs=" << cell.runs << " depth=" << cell.depth << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected: warming helps the first decisions (online improvement\n"
            << "eventually compensates for a cold start, but a §5-style bootstrap of\n"
            << "10 runs at depth 2 gives high-quality recovery from the first fault\n"
            << "onward — the paper's choice).\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"faults", "top", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth", "jobs"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
