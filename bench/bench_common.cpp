#include "bench_common.hpp"

#include <ostream>

#include "util/table.hpp"

namespace recoverd::bench {

EmnExperimentSetup parse_emn_setup(const CliArgs& args) {
  EmnExperimentSetup setup;
  setup.emn.operator_response_time =
      args.get_double("top", setup.emn.operator_response_time);
  setup.seed = static_cast<std::uint64_t>(args.get_size("seed", 2006));
  // Validated parses (util/cli.hpp): a negative count used to wrap through
  // the size_t cast into an absurd huge value; now it fails loudly.
  setup.bound_capacity = args.get_size("capacity", 64);  // 0 = unlimited
  setup.branch_floor = args.get_double("branch-floor", setup.branch_floor);
  setup.termination_probability =
      args.get_double("termination-probability", setup.termination_probability);
  setup.bootstrap_runs = args.get_count("bootstrap-runs", 10);
  setup.bootstrap_depth = static_cast<int>(args.get_count("bootstrap-depth", 2));
  setup.jobs = args.get_jobs(1);
  setup.memo = args.get_int("memo", 1) != 0;
  setup.memo_max_mb = args.get_size("memo-max-mb", 64);
  setup.mismatch = sim::parse_mismatch_options(args);
  setup.guard = controller::parse_guard_options(args);
  return setup;
}

std::vector<std::string> robustness_flag_names() {
  std::vector<std::string> names = sim::mismatch_flag_names();
  const std::vector<std::string> guard = controller::guard_flag_names();
  names.insert(names.end(), guard.begin(), guard.end());
  return names;
}

sim::ExperimentResult run_campaign(const Pomdp& env_model,
                                   controller::RecoveryController& serial_controller,
                                   const sim::ControllerFactory& factory,
                                   const sim::FaultInjector& injector,
                                   std::size_t episodes, std::uint64_t seed,
                                   const sim::EpisodeConfig& config, std::size_t jobs) {
  if (jobs <= 1) {
    return sim::run_experiment(env_model, serial_controller, injector, episodes, seed,
                               config);
  }
  return sim::run_experiment(env_model, factory, injector, episodes, seed, config, jobs);
}

sim::FaultInjector make_zombie_injector(const Pomdp& base_model,
                                        const models::EmnIds& ids) {
  (void)base_model;
  std::vector<StateId> zombies(ids.topo.zombie_states.begin(),
                               ids.topo.zombie_states.end());
  return sim::FaultInjector(std::move(zombies));
}

sim::EpisodeConfig make_emn_episode_config(const Pomdp& base_model,
                                           const models::EmnIds& ids) {
  sim::EpisodeConfig config;
  config.observe_action = ids.topo.observe_action;
  config.max_steps = 10000;
  config.initial_observation = true;
  for (StateId s = 0; s < base_model.num_states(); ++s) {
    if (!base_model.mdp().is_goal(s)) config.fault_support.push_back(s);
  }
  return config;
}

namespace {
struct PaperRow {
  const char* algorithm;
  const char* depth;
  double cost, recovery, residual, algorithm_ms, actions, monitor_calls;
};

// Table 1 of the paper (per-fault averages, 10,000 zombie injections).
constexpr PaperRow kPaperRows[] = {
    {"Most Likely", "1", 244.40, 394.73, 212.98, 0.09, 3.00, 3.00},
    {"Heuristic", "1", 151.04, 299.72, 193.24, 6.71, 1.71, 17.42},
    {"Heuristic", "2", 118.481, 269.96, 169.34, 123.59, 1.216, 22.51},
    {"Heuristic", "3", 118.846, 271.32, 169.86, 1485.0, 1.216, 22.50},
    {"Bounded", "1", 114.16, 192.30, 165.24, 92.0, 1.20, 7.69},
    {"Oracle", "-", 84.4, 132.00, 132.00, 0.0, 1.00, 0.00},
};
}  // namespace

void print_table1(std::ostream& os, const std::vector<TableRow>& rows,
                  std::size_t faults_note) {
  TextTable table;
  table.set_header({"Algorithm", "Depth", "Cost", "RecoveryTime(s)", "ResidualTime(s)",
                    "AlgTime(ms)", "Actions", "MonitorCalls", "Unrecovered"});
  for (const auto& row : rows) {
    table.add_row({row.algorithm, row.depth, TextTable::num(row.result.cost.mean()),
                   TextTable::num(row.result.recovery_time.mean()),
                   TextTable::num(row.result.residual_time.mean()),
                   TextTable::num(row.result.algorithm_time_ms.mean(), 3),
                   TextTable::num(row.result.recovery_actions.mean(), 2),
                   TextTable::num(row.result.monitor_calls.mean(), 2),
                   std::to_string(row.result.unrecovered)});
  }
  os << "Measured (per-fault averages over " << faults_note << " zombie injections):\n";
  table.print(os);

  TextTable paper;
  paper.set_header({"Algorithm", "Depth", "Cost", "RecoveryTime(s)", "ResidualTime(s)",
                    "AlgTime(ms)", "Actions", "MonitorCalls"});
  for (const auto& row : kPaperRows) {
    paper.add_row({row.algorithm, row.depth, TextTable::num(row.cost),
                   TextTable::num(row.recovery), TextTable::num(row.residual),
                   TextTable::num(row.algorithm_ms, 2), TextTable::num(row.actions),
                   TextTable::num(row.monitor_calls)});
  }
  os << "\nPaper Table 1 (reference, 2 GHz Athlon, 10,000 injections):\n";
  paper.print(os);
}

}  // namespace recoverd::bench
