// Throughput campaign for the batched decision engine (DESIGN.md §13): a
// FleetDriver of N synchronized EMN recovery sessions per tick, swept over
// fleet widths, against the looped single-session baseline.
//
// Per width the campaign measures steady-state decisions/second and per-tick
// latency (p50/p99) of FleetMode::Batch, then re-measures the same schedule
// in FleetMode::Loop (capped at --loop-sessions lanes — per-decision cost is
// width-independent there, so the smaller fleet gives the same rate without
// hour-long cells) and reports the speedup. Two checks gate
// all_checks_passed:
//   - parity: a Batch and a Loop fleet from the same seed stay bitwise
//     identical (belief bits, chosen actions, episode tallies) tick by tick;
//   - speedup ≥ 10 at every width ≥ 10000 sessions (the shared-subtree
//     reuse claim the committed BENCH_throughput.json records).
//
// Flags:
//   --sessions=N     largest fleet width (default 100000; sweep keeps
//                    {1000, 10000, 100000} ∩ [1, N])
//   --ticks=N        measured ticks per cell (default 20)
//   --warmup=N       unmeasured warm-up ticks per cell (default 2 — first
//                    ticks pay engine arena + batch scratch allocation)
//   --loop-sessions=N  width cap of the Loop baseline cells (default 512)
//   --parity-sessions=N, --parity-ticks=N
//                    shape of the bitwise Batch-vs-Loop check (default 64×8)
//   --smoke          tiny sweep {64, 256} × 5 ticks, no speedup gate (CI)
//   --out=FILE       JSON report (default BENCH_throughput.json; schema
//                    recoverd.throughput.v1)
//   --seed, --capacity, --branch-floor, --bootstrap-runs, --bootstrap-depth,
//   --memo, --memo-max-mb, --simd, --metrics-out, --trace-out, ...
//                    shared knobs (bench_common / util/obs_main.hpp)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "obs/json.hpp"
#include "sim/fleet_driver.hpp"
#include "util/check.hpp"
#include "util/obs_main.hpp"
#include "util/shutdown.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace recoverd::bench {
namespace {

struct CellResult {
  std::size_t sessions = 0;
  std::size_t ticks = 0;
  double total_ms = 0.0;
  double tick_ms_p50 = 0.0;
  double tick_ms_p99 = 0.0;
  std::size_t decisions = 0;
  std::size_t classes = 0;
  std::size_t shared_hits = 0;
  std::size_t episodes = 0;
  double decisions_per_sec = 0.0;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;  // interrupted cell (shutdown mid-warmup)
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const auto index = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return sorted[std::min(index, n - 1)];
}

CellResult run_cell(const Pomdp& recovery, const Pomdp& base,
                    bounds::BoundSet& set, const sim::FaultInjector& injector,
                    std::uint64_t seed, const sim::FleetOptions& options,
                    std::size_t warmup, std::size_t ticks) {
  sim::FleetDriver fleet(recovery, base, set, injector, seed, options);
  for (std::size_t i = 0; i < warmup && !shutdown_requested(); ++i) fleet.tick();

  const sim::FleetStats before = fleet.stats();
  std::vector<double> tick_ms;
  tick_ms.reserve(ticks);
  for (std::size_t i = 0; i < ticks && !shutdown_requested(); ++i) {
    Timer timer;
    fleet.tick();
    tick_ms.push_back(timer.elapsed_ms());
  }
  const sim::FleetStats& after = fleet.stats();

  CellResult cell;
  cell.sessions = options.sessions;
  cell.ticks = tick_ms.size();
  for (const double ms : tick_ms) cell.total_ms += ms;
  cell.tick_ms_p50 = percentile(tick_ms, 0.5);
  cell.tick_ms_p99 = percentile(tick_ms, 0.99);
  cell.decisions = after.decisions - before.decisions;
  cell.classes = after.classes - before.classes;
  cell.shared_hits = after.shared_hits - before.shared_hits;
  cell.episodes = after.episodes_completed - before.episodes_completed;
  cell.decisions_per_sec =
      cell.total_ms > 0.0 ? 1000.0 * static_cast<double>(cell.decisions) / cell.total_ms
                          : 0.0;
  return cell;
}

obs::Json cell_json(const CellResult& cell) {
  obs::Json::Object row;
  row["sessions"] = static_cast<std::uint64_t>(cell.sessions);
  row["ticks"] = static_cast<std::uint64_t>(cell.ticks);
  row["total_ms"] = cell.total_ms;
  row["tick_ms_p50"] = cell.tick_ms_p50;
  row["tick_ms_p99"] = cell.tick_ms_p99;
  row["decisions"] = static_cast<std::uint64_t>(cell.decisions);
  row["classes"] = static_cast<std::uint64_t>(cell.classes);
  row["shared_hits"] = static_cast<std::uint64_t>(cell.shared_hits);
  row["episodes_completed"] = static_cast<std::uint64_t>(cell.episodes);
  row["decisions_per_sec"] = cell.decisions_per_sec;
  return obs::Json(std::move(row));
}

/// Bitwise lock-step comparison of a Batch and a Loop fleet from one seed.
bool parity_check(const Pomdp& recovery, const Pomdp& base, bounds::BoundSet& set,
                  const sim::FaultInjector& injector, std::uint64_t seed,
                  sim::FleetOptions options, std::size_t sessions, std::size_t ticks) {
  options.sessions = sessions;
  options.mode = sim::FleetMode::Batch;
  sim::FleetDriver batch(recovery, base, set, injector, seed, options);
  options.mode = sim::FleetMode::Loop;
  sim::FleetDriver loop(recovery, base, set, injector, seed, options);

  const std::size_t num_states = recovery.num_states();
  for (std::size_t t = 0; t <= ticks; ++t) {
    if (t > 0) {
      batch.tick();
      loop.tick();
    }
    for (StateId s = 0; s < num_states; ++s) {
      const auto a = batch.beliefs().state_lanes(s);
      const auto b = loop.beliefs().state_lanes(s);
      if (std::memcmp(a.data(), b.data(), sessions * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "throughput parity: belief bits diverged (tick %zu, state %zu)\n",
                     t, static_cast<std::size_t>(s));
        return false;
      }
    }
    if (t > 0 && !std::equal(batch.last_actions().begin(), batch.last_actions().end(),
                             loop.last_actions().begin())) {
      std::fprintf(stderr, "throughput parity: actions diverged (tick %zu)\n", t);
      return false;
    }
    const sim::FleetStats& sb = batch.stats();
    const sim::FleetStats& sl = loop.stats();
    if (sb.decisions != sl.decisions ||
        sb.episodes_completed != sl.episodes_completed ||
        sb.episodes_recovered != sl.episodes_recovered ||
        sb.episodes_truncated != sl.episodes_truncated ||
        sb.belief_mismatches != sl.belief_mismatches) {
      std::fprintf(stderr, "throughput parity: episode tallies diverged (tick %zu)\n", t);
      return false;
    }
  }
  return true;
}

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const bool smoke = args.get_bool("smoke", false);
  // Validated parses (util/cli.hpp): zero/negative widths or tick counts
  // fail loudly instead of wrapping through the size_t casts.
  const std::size_t max_sessions = args.get_count("sessions", smoke ? 256 : 100000);
  const std::size_t ticks = args.get_count("ticks", smoke ? 5 : 20);
  const std::size_t warmup = args.get_size("warmup", 2);
  const std::size_t loop_sessions = args.get_count("loop-sessions", 512);
  const std::size_t parity_sessions = args.get_count("parity-sessions", 64);
  const std::size_t parity_ticks = args.get_count("parity-ticks", 8);

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);

  // The Table 1 bounded-controller setup: RA-Bound seed + bootstrap warm-up.
  // The fleet runs with the set frozen (no online improvement), so one warm
  // set serves every cell identically.
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
  controller::BootstrapOptions boot;
  boot.iterations = setup.bootstrap_runs;
  boot.tree_depth = setup.bootstrap_depth;
  boot.observe_action = ids.topo.observe_action;
  boot.seed = setup.seed;
  boot.branch_floor = setup.branch_floor;
  Timer bootstrap_timer;
  controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()),
                               boot);
  std::fprintf(stderr, "bootstrap done in %.0f ms, |B|=%zu\n",
               bootstrap_timer.elapsed_ms(), set.size());

  sim::FleetOptions fleet_options;
  fleet_options.observe_action = ids.topo.observe_action;
  fleet_options.tree_depth = 1;
  fleet_options.branch_floor = setup.branch_floor;
  fleet_options.memo = setup.memo;
  fleet_options.memo_max_mb = setup.memo_max_mb;
  fleet_options.memo_carry = args.get_bool("memo-carry", false);
  fleet_options.max_steps = 10000;

  std::printf("=== Batched decision throughput (EMN fleet, depth 1) ===\n");
  std::printf("simd: %s, |B|=%zu, seed=%llu\n\n", simd::describe_active_mode().c_str(),
              set.size(), static_cast<unsigned long long>(setup.seed));

  const bool parity_ok = parity_check(recovery, base, set, injector, setup.seed,
                                      fleet_options, parity_sessions, parity_ticks);
  std::printf("batch-vs-loop parity (%zu sessions, %zu ticks): %s\n\n", parity_sessions,
              parity_ticks, parity_ok ? "bitwise identical" : "MISMATCH");

  std::vector<std::size_t> widths;
  for (std::size_t n : smoke ? std::vector<std::size_t>{64, 256}
                             : std::vector<std::size_t>{1000, 10000, 100000}) {
    if (n <= max_sessions) widths.push_back(n);
  }
  RD_EXPECTS(!widths.empty(), "throughput campaign: --sessions excludes every width");

  std::printf("%9s | %12s %11s %11s %12s %11s | %12s | %8s\n", "sessions",
              "batch_dps", "tick_p50ms", "tick_p99ms", "classes/tick", "shared/tick",
              "loop_dps", "speedup");

  obs::Json::Array rows;
  bool all_checks_passed = parity_ok;
  for (const std::size_t sessions : widths) {
    if (shutdown_requested()) break;  // wind down, still flush the report
    sim::FleetOptions options = fleet_options;
    options.sessions = sessions;
    options.mode = sim::FleetMode::Batch;
    const CellResult batch =
        run_cell(recovery, base, set, injector, setup.seed, options, warmup, ticks);

    options.sessions = std::min(sessions, loop_sessions);
    options.mode = sim::FleetMode::Loop;
    const CellResult loop =
        run_cell(recovery, base, set, injector, setup.seed, options, warmup, ticks);

    const double speedup = loop.decisions_per_sec > 0.0
                               ? batch.decisions_per_sec / loop.decisions_per_sec
                               : 0.0;
    // The committed claim: ≥10x decisions/sec at fleet widths ≥ 10k, where
    // cross-session belief coincidence makes canonicalization pay.
    const bool speedup_ok = sessions < 10000 || speedup >= 10.0;
    all_checks_passed = all_checks_passed && speedup_ok;

    std::printf("%9zu | %12.0f %11.2f %11.2f %12.1f %11.1f | %12.0f | %7.1fx%s\n",
                sessions, batch.decisions_per_sec, batch.tick_ms_p50, batch.tick_ms_p99,
                static_cast<double>(batch.classes) / static_cast<double>(ticks),
                static_cast<double>(batch.shared_hits) / static_cast<double>(ticks),
                loop.decisions_per_sec, speedup, speedup_ok ? "" : "  (< 10x!)");

    obs::Json::Object row;
    row["sessions"] = static_cast<std::uint64_t>(sessions);
    row["batch"] = cell_json(batch);
    row["loop"] = cell_json(loop);
    row["speedup"] = speedup;
    row["speedup_ok"] = speedup_ok;
    rows.push_back(obs::Json(std::move(row)));
  }

  const std::string out_path = args.get_string("out", "BENCH_throughput.json");
  if (!out_path.empty()) {
    obs::Json::Object doc;
    doc["schema"] = "recoverd.throughput.v1";
    doc["note"] =
        "Batched decision engine throughput (bench/throughput_campaign). batch = "
        "FleetDriver in Batch mode: per tick one action_values_batch call with "
        "cross-session root canonicalization plus one update_batch Bayes pass; "
        "loop = the same schedule through single-session action_values/"
        "update_belief (measured at min(sessions, loop-sessions) lanes — the "
        "per-decision rate there is width-independent). decisions_per_sec counts "
        "lanes decided per wall-clock second over the measured ticks. Absolute "
        "rates are machine-dependent; the committed claims are parity_ok "
        "(Batch and Loop fleets bitwise identical tick by tick) and speedup >= "
        "10 at sessions >= 10000.";
    doc["model"] = "emn-zombie-fleet";
    doc["simd"] = simd::describe_active_mode();
    doc["bound_size"] = static_cast<std::uint64_t>(set.size());
    doc["seed"] = static_cast<std::uint64_t>(setup.seed);
    doc["ticks"] = static_cast<std::uint64_t>(ticks);
    doc["warmup"] = static_cast<std::uint64_t>(warmup);
    doc["loop_sessions_cap"] = static_cast<std::uint64_t>(loop_sessions);
    obs::Json::Object pj;
    pj["sessions"] = static_cast<std::uint64_t>(parity_sessions);
    pj["ticks"] = static_cast<std::uint64_t>(parity_ticks);
    pj["ok"] = parity_ok;
    doc["parity"] = obs::Json(std::move(pj));
    doc["rows"] = obs::Json(std::move(rows));
    doc["all_checks_passed"] = all_checks_passed;
    std::ofstream out(out_path);
    RD_EXPECTS(out.good(), "throughput campaign: cannot open --out file");
    obs::Json(std::move(doc)).write(out);
    out << "\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (!all_checks_passed) {
    std::fprintf(stderr, "throughput campaign: CORRECTNESS CHECK FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known = {
      "sessions", "ticks",          "warmup",         "loop-sessions",
      "parity-sessions", "parity-ticks", "smoke",     "out",
      "top",      "seed",           "capacity",       "branch-floor",
      "termination-probability",    "bootstrap-runs", "bootstrap-depth",
      "jobs",     "memo",           "memo-max-mb",    "memo-carry"};
  const std::vector<std::string> robustness = recoverd::bench::robustness_flag_names();
  known.insert(known.end(), robustness.begin(), robustness.end());
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
