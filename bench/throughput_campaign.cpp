// Throughput campaign for the batched decision engine (DESIGN.md §13): a
// FleetDriver of N synchronized EMN recovery sessions per tick, swept over
// fleet widths, against the looped single-session baseline.
//
// Per width the campaign measures steady-state decisions/second and per-tick
// latency (p50/p99) of FleetMode::Batch, then re-measures the same schedule
// in FleetMode::Loop (capped at --loop-sessions lanes — per-decision cost is
// width-independent there, so the smaller fleet gives the same rate without
// hour-long cells) and reports the speedup. After the width sweep a
// deep-batch section (DESIGN.md §16) measures the same fleet at
// --deep-depth with the deep pipeline on and off. The checks that gate
// all_checks_passed:
//   - parity: a Batch and a Loop fleet from the same seed stay bitwise
//     identical (belief bits, chosen actions, episode tallies) tick by
//     tick — at depth 1 and again at the deep depth;
//   - simd parity: the deep fleet re-run under --simd=scalar and the auto
//     (widest) kernels produces identical belief bits, actions and tallies;
//   - speedup ≥ 10 at every width ≥ 10000 sessions (the shared-subtree
//     reuse claim the committed BENCH_throughput.json records);
//   - deep speedup ≥ 1.5 over the classic per-class walks at 10000
//     sessions, depth ≥ 2;
//   - zero per-decide thread spawns: WorkPool threads_created must not
//     move during any measured cell (the persistent-pool contract).
//
// Flags:
//   --sessions=N     largest fleet width (default 100000; sweep keeps
//                    {1000, 10000, 100000} ∩ [1, N])
//   --ticks=N        measured ticks per cell (default 20)
//   --warmup=N       unmeasured warm-up ticks per cell (default 2 — first
//                    ticks pay engine arena + batch scratch allocation)
//   --loop-sessions=N  width cap of the Loop baseline cells (default 512)
//   --parity-sessions=N, --parity-ticks=N
//                    shape of the bitwise Batch-vs-Loop check (default 64×8)
//   --deep-depth=N   tree depth of the deep-batch cells (default 2)
//   --deep-sessions=N  width of the deep-batch cells (default 10000;
//                    independent of the --sessions sweep)
//   --deep-warmup=N  unmeasured warm-up ticks of the deep cells (default 6:
//                    the fleet's belief population needs a few ticks to
//                    reach the steady-state diversity the claim is about)
//   --deep-batch=BOOL  skip the deep section entirely when false
//   --smoke          tiny sweep {64, 256} × 5 ticks, no speedup gate (CI)
//   --out=FILE       JSON report (default BENCH_throughput.json; schema
//                    recoverd.throughput.v1)
//   --seed, --capacity, --branch-floor, --bootstrap-runs, --bootstrap-depth,
//   --memo, --memo-max-mb, --simd, --metrics-out, --trace-out, ...
//                    shared knobs (bench_common / util/obs_main.hpp)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "obs/json.hpp"
#include "sim/fleet_driver.hpp"
#include "util/check.hpp"
#include "util/obs_main.hpp"
#include "util/shutdown.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"
#include "util/work_pool.hpp"

namespace recoverd::bench {
namespace {

struct CellResult {
  std::size_t sessions = 0;
  std::size_t ticks = 0;
  double total_ms = 0.0;
  double tick_ms_p50 = 0.0;
  double tick_ms_p99 = 0.0;
  std::size_t decisions = 0;
  std::size_t classes = 0;
  std::size_t shared_hits = 0;
  std::size_t episodes = 0;
  double decisions_per_sec = 0.0;
  // WorkPool deltas across the measured ticks only (the team is warm after
  // construction + warmup, so threads_created must stay put: the
  // zero-per-decide-spawn contract of DESIGN.md §16).
  std::size_t pool_threads_created = 0;
  std::size_t pool_dispatches = 0;
  std::size_t pool_spawns_avoided = 0;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;  // interrupted cell (shutdown mid-warmup)
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const auto index = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return sorted[std::min(index, n - 1)];
}

CellResult run_cell(const Pomdp& recovery, const Pomdp& base,
                    bounds::BoundSet& set, const sim::FaultInjector& injector,
                    std::uint64_t seed, const sim::FleetOptions& options,
                    std::size_t warmup, std::size_t ticks) {
  sim::FleetDriver fleet(recovery, base, set, injector, seed, options);
  for (std::size_t i = 0; i < warmup && !shutdown_requested(); ++i) fleet.tick();

  const sim::FleetStats before = fleet.stats();
  const util::WorkPool::Stats pool_before = util::WorkPool::instance().stats();
  std::vector<double> tick_ms;
  tick_ms.reserve(ticks);
  for (std::size_t i = 0; i < ticks && !shutdown_requested(); ++i) {
    Timer timer;
    fleet.tick();
    tick_ms.push_back(timer.elapsed_ms());
  }
  const sim::FleetStats& after = fleet.stats();
  const util::WorkPool::Stats pool_after = util::WorkPool::instance().stats();

  CellResult cell;
  cell.sessions = options.sessions;
  cell.ticks = tick_ms.size();
  for (const double ms : tick_ms) cell.total_ms += ms;
  cell.tick_ms_p50 = percentile(tick_ms, 0.5);
  cell.tick_ms_p99 = percentile(tick_ms, 0.99);
  cell.decisions = after.decisions - before.decisions;
  cell.classes = after.classes - before.classes;
  cell.shared_hits = after.shared_hits - before.shared_hits;
  cell.episodes = after.episodes_completed - before.episodes_completed;
  cell.decisions_per_sec =
      cell.total_ms > 0.0 ? 1000.0 * static_cast<double>(cell.decisions) / cell.total_ms
                          : 0.0;
  cell.pool_threads_created = pool_after.threads_created - pool_before.threads_created;
  cell.pool_dispatches = pool_after.dispatches - pool_before.dispatches;
  cell.pool_spawns_avoided = pool_after.spawns_avoided - pool_before.spawns_avoided;
  return cell;
}

obs::Json cell_json(const CellResult& cell) {
  obs::Json::Object row;
  row["sessions"] = static_cast<std::uint64_t>(cell.sessions);
  row["ticks"] = static_cast<std::uint64_t>(cell.ticks);
  row["total_ms"] = cell.total_ms;
  row["tick_ms_p50"] = cell.tick_ms_p50;
  row["tick_ms_p99"] = cell.tick_ms_p99;
  row["decisions"] = static_cast<std::uint64_t>(cell.decisions);
  row["classes"] = static_cast<std::uint64_t>(cell.classes);
  row["shared_hits"] = static_cast<std::uint64_t>(cell.shared_hits);
  row["episodes_completed"] = static_cast<std::uint64_t>(cell.episodes);
  row["decisions_per_sec"] = cell.decisions_per_sec;
  row["pool_threads_created"] = static_cast<std::uint64_t>(cell.pool_threads_created);
  row["pool_dispatches"] = static_cast<std::uint64_t>(cell.pool_dispatches);
  row["pool_spawns_avoided"] = static_cast<std::uint64_t>(cell.pool_spawns_avoided);
  return obs::Json(std::move(row));
}

/// Bitwise lock-step comparison of a Batch and a Loop fleet from one seed.
bool parity_check(const Pomdp& recovery, const Pomdp& base, bounds::BoundSet& set,
                  const sim::FaultInjector& injector, std::uint64_t seed,
                  sim::FleetOptions options, std::size_t sessions, std::size_t ticks) {
  options.sessions = sessions;
  options.mode = sim::FleetMode::Batch;
  sim::FleetDriver batch(recovery, base, set, injector, seed, options);
  options.mode = sim::FleetMode::Loop;
  sim::FleetDriver loop(recovery, base, set, injector, seed, options);

  const std::size_t num_states = recovery.num_states();
  for (std::size_t t = 0; t <= ticks; ++t) {
    if (t > 0) {
      batch.tick();
      loop.tick();
    }
    for (StateId s = 0; s < num_states; ++s) {
      const auto a = batch.beliefs().state_lanes(s);
      const auto b = loop.beliefs().state_lanes(s);
      if (std::memcmp(a.data(), b.data(), sessions * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "throughput parity: belief bits diverged (tick %zu, state %zu)\n",
                     t, static_cast<std::size_t>(s));
        return false;
      }
    }
    if (t > 0 && !std::equal(batch.last_actions().begin(), batch.last_actions().end(),
                             loop.last_actions().begin())) {
      std::fprintf(stderr, "throughput parity: actions diverged (tick %zu)\n", t);
      return false;
    }
    const sim::FleetStats& sb = batch.stats();
    const sim::FleetStats& sl = loop.stats();
    if (sb.decisions != sl.decisions ||
        sb.episodes_completed != sl.episodes_completed ||
        sb.episodes_recovered != sl.episodes_recovered ||
        sb.episodes_truncated != sl.episodes_truncated ||
        sb.belief_mismatches != sl.belief_mismatches) {
      std::fprintf(stderr, "throughput parity: episode tallies diverged (tick %zu)\n", t);
      return false;
    }
  }
  return true;
}

/// The same fleet schedule run twice — once on the scalar reference
/// kernels, once on the auto (widest supported) tier — must produce
/// identical belief bits, actions and episode tallies: the SIMD mode is a
/// pure performance knob (util/simd.hpp). Restores the mode that was
/// active on entry.
bool simd_parity_check(const Pomdp& recovery, const Pomdp& base, bounds::BoundSet& set,
                       const sim::FaultInjector& injector, std::uint64_t seed,
                       sim::FleetOptions options, std::size_t sessions,
                       std::size_t ticks) {
  options.sessions = sessions;
  options.mode = sim::FleetMode::Batch;
  const simd::Mode saved = simd::active_mode();

  struct Trace {
    std::vector<ActionId> actions;
    std::vector<double> beliefs;
    std::size_t decisions = 0;
    std::size_t episodes = 0;
  };
  const std::size_t num_states = recovery.num_states();
  const auto run_trace = [&](const char* mode) {
    simd::configure(mode);
    sim::FleetDriver fleet(recovery, base, set, injector, seed, options);
    Trace trace;
    for (std::size_t t = 0; t < ticks && !shutdown_requested(); ++t) {
      fleet.tick();
      trace.actions.insert(trace.actions.end(), fleet.last_actions().begin(),
                           fleet.last_actions().end());
      for (StateId s = 0; s < num_states; ++s) {
        const std::span<const double> lanes = fleet.beliefs().state_lanes(s);
        trace.beliefs.insert(trace.beliefs.end(), lanes.begin(), lanes.end());
      }
    }
    trace.decisions = fleet.stats().decisions;
    trace.episodes = fleet.stats().episodes_completed;
    return trace;
  };

  const Trace scalar = run_trace("scalar");
  const Trace widest = run_trace("auto");
  simd::configure(simd::mode_name(saved));

  if (scalar.beliefs.size() != widest.beliefs.size() ||
      std::memcmp(scalar.beliefs.data(), widest.beliefs.data(),
                  scalar.beliefs.size() * sizeof(double)) != 0) {
    std::fprintf(stderr, "throughput simd parity: belief bits diverged\n");
    return false;
  }
  if (scalar.actions != widest.actions) {
    std::fprintf(stderr, "throughput simd parity: actions diverged\n");
    return false;
  }
  if (scalar.decisions != widest.decisions || scalar.episodes != widest.episodes) {
    std::fprintf(stderr, "throughput simd parity: episode tallies diverged\n");
    return false;
  }
  return true;
}

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const bool smoke = args.get_bool("smoke", false);
  // Validated parses (util/cli.hpp): zero/negative widths or tick counts
  // fail loudly instead of wrapping through the size_t casts.
  const std::size_t max_sessions = args.get_count("sessions", smoke ? 256 : 100000);
  const std::size_t ticks = args.get_count("ticks", smoke ? 5 : 20);
  const std::size_t warmup = args.get_size("warmup", 2);
  const std::size_t loop_sessions = args.get_count("loop-sessions", 512);
  const std::size_t parity_sessions = args.get_count("parity-sessions", 64);
  const std::size_t parity_ticks = args.get_count("parity-ticks", 8);

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);

  // The Table 1 bounded-controller setup: RA-Bound seed + bootstrap warm-up.
  // The fleet runs with the set frozen (no online improvement), so one warm
  // set serves every cell identically.
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
  controller::BootstrapOptions boot;
  boot.iterations = setup.bootstrap_runs;
  boot.tree_depth = setup.bootstrap_depth;
  boot.observe_action = ids.topo.observe_action;
  boot.seed = setup.seed;
  boot.branch_floor = setup.branch_floor;
  Timer bootstrap_timer;
  controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()),
                               boot);
  std::fprintf(stderr, "bootstrap done in %.0f ms, |B|=%zu\n",
               bootstrap_timer.elapsed_ms(), set.size());

  sim::FleetOptions fleet_options;
  fleet_options.observe_action = ids.topo.observe_action;
  fleet_options.tree_depth = 1;
  fleet_options.branch_floor = setup.branch_floor;
  fleet_options.memo = setup.memo;
  fleet_options.memo_max_mb = setup.memo_max_mb;
  fleet_options.memo_carry = args.get_bool("memo-carry", false);
  fleet_options.max_steps = 10000;

  std::printf("=== Batched decision throughput (EMN fleet, depth 1) ===\n");
  std::printf("simd: %s, |B|=%zu, seed=%llu\n\n", simd::describe_active_mode().c_str(),
              set.size(), static_cast<unsigned long long>(setup.seed));

  const bool parity_ok = parity_check(recovery, base, set, injector, setup.seed,
                                      fleet_options, parity_sessions, parity_ticks);
  std::printf("batch-vs-loop parity (%zu sessions, %zu ticks): %s\n\n", parity_sessions,
              parity_ticks, parity_ok ? "bitwise identical" : "MISMATCH");

  std::vector<std::size_t> widths;
  for (std::size_t n : smoke ? std::vector<std::size_t>{64, 256}
                             : std::vector<std::size_t>{1000, 10000, 100000}) {
    if (n <= max_sessions) widths.push_back(n);
  }
  RD_EXPECTS(!widths.empty(), "throughput campaign: --sessions excludes every width");

  std::printf("%9s | %12s %11s %11s %12s %11s | %12s | %8s\n", "sessions",
              "batch_dps", "tick_p50ms", "tick_p99ms", "classes/tick", "shared/tick",
              "loop_dps", "speedup");

  obs::Json::Array rows;
  bool all_checks_passed = parity_ok;
  // The persistent-pool contract: no measured cell may create a thread
  // (the team is warm after construction + warmup; a moving
  // threads_created would mean decide() went back to spawn-per-call).
  // Only meaningful when warmup ticks exist to absorb lazy growth.
  bool zero_spawn_ok = true;
  for (const std::size_t sessions : widths) {
    if (shutdown_requested()) break;  // wind down, still flush the report
    sim::FleetOptions options = fleet_options;
    options.sessions = sessions;
    options.mode = sim::FleetMode::Batch;
    const CellResult batch =
        run_cell(recovery, base, set, injector, setup.seed, options, warmup, ticks);

    options.sessions = std::min(sessions, loop_sessions);
    options.mode = sim::FleetMode::Loop;
    const CellResult loop =
        run_cell(recovery, base, set, injector, setup.seed, options, warmup, ticks);

    const double speedup = loop.decisions_per_sec > 0.0
                               ? batch.decisions_per_sec / loop.decisions_per_sec
                               : 0.0;
    // The committed claim: ≥10x decisions/sec at fleet widths ≥ 10k, where
    // cross-session belief coincidence makes canonicalization pay.
    const bool speedup_ok = sessions < 10000 || speedup >= 10.0;
    all_checks_passed = all_checks_passed && speedup_ok;
    if (warmup > 0) {
      zero_spawn_ok = zero_spawn_ok && batch.pool_threads_created == 0 &&
                      loop.pool_threads_created == 0;
    }

    std::printf("%9zu | %12.0f %11.2f %11.2f %12.1f %11.1f | %12.0f | %7.1fx%s\n",
                sessions, batch.decisions_per_sec, batch.tick_ms_p50, batch.tick_ms_p99,
                static_cast<double>(batch.classes) / static_cast<double>(ticks),
                static_cast<double>(batch.shared_hits) / static_cast<double>(ticks),
                loop.decisions_per_sec, speedup, speedup_ok ? "" : "  (< 10x!)");

    obs::Json::Object row;
    row["sessions"] = static_cast<std::uint64_t>(sessions);
    row["batch"] = cell_json(batch);
    row["loop"] = cell_json(loop);
    row["speedup"] = speedup;
    row["speedup_ok"] = speedup_ok;
    rows.push_back(obs::Json(std::move(row)));
  }

  // --- Deep-batch pipeline cells (DESIGN.md §16) -------------------------
  // The depth-2+ frontier is where whole-tree canonicalization pays: the
  // deep pipeline expands the action×observation frontier of the entire
  // fleet level by level, deduplicating beliefs across sessions, actions
  // AND levels, and evaluates one giant leaf batch — versus the classic
  // per-class serial walks (the engine before §16). Bits are identical by
  // construction; the committed claim is >= 1.5x decisions/sec at 10000
  // sessions, depth >= 2.
  const bool deep_enabled = args.get_bool("deep-batch", true);
  const std::size_t deep_depth = args.get_count("deep-depth", 2);
  const std::size_t deep_sessions =
      args.get_count("deep-sessions", smoke ? 256 : 10000);
  const std::size_t deep_warmup = args.get_size("deep-warmup", 6);
  obs::Json::Object deep_doc;
  if (deep_enabled && !shutdown_requested()) {
    sim::FleetOptions deep_base = fleet_options;
    deep_base.tree_depth = static_cast<int>(deep_depth);

    const bool deep_parity_ok =
        parity_check(recovery, base, set, injector, setup.seed, deep_base,
                     parity_sessions, parity_ticks);
    std::printf("\ndeep batch-vs-loop parity (depth %zu, %zu sessions, %zu ticks): %s\n",
                deep_depth, parity_sessions, parity_ticks,
                deep_parity_ok ? "bitwise identical" : "MISMATCH");
    const bool deep_simd_ok =
        simd_parity_check(recovery, base, set, injector, setup.seed, deep_base,
                          parity_sessions, parity_ticks);
    std::printf("deep scalar-vs-auto parity (depth %zu, %zu sessions, %zu ticks): %s\n",
                deep_depth, parity_sessions, parity_ticks,
                deep_simd_ok ? "bitwise identical" : "MISMATCH");

    sim::FleetOptions deep_options = deep_base;
    deep_options.sessions = deep_sessions;
    deep_options.mode = sim::FleetMode::Batch;
    deep_options.deep_batch = true;
    const CellResult deep_on = run_cell(recovery, base, set, injector, setup.seed,
                                        deep_options, deep_warmup, ticks);
    deep_options.deep_batch = false;
    const CellResult deep_off = run_cell(recovery, base, set, injector, setup.seed,
                                         deep_options, deep_warmup, ticks);

    const double deep_speedup = deep_off.decisions_per_sec > 0.0
                                    ? deep_on.decisions_per_sec / deep_off.decisions_per_sec
                                    : 0.0;
    const bool deep_speedup_ok =
        smoke || deep_sessions < 10000 || deep_depth < 2 || deep_speedup >= 1.5;
    if (deep_warmup > 0) {
      zero_spawn_ok = zero_spawn_ok && deep_on.pool_threads_created == 0 &&
                      deep_off.pool_threads_created == 0;
    }
    all_checks_passed =
        all_checks_passed && deep_parity_ok && deep_simd_ok && deep_speedup_ok;

    std::printf("deep pipeline (depth %zu, %zu sessions): %.0f dps on, %.0f dps off, "
                "%.2fx%s\n",
                deep_depth, deep_sessions, deep_on.decisions_per_sec,
                deep_off.decisions_per_sec, deep_speedup,
                deep_speedup_ok ? "" : "  (< 1.5x!)");

    deep_doc["depth"] = static_cast<std::uint64_t>(deep_depth);
    deep_doc["sessions"] = static_cast<std::uint64_t>(deep_sessions);
    deep_doc["parity_ok"] = deep_parity_ok;
    deep_doc["simd_parity_ok"] = deep_simd_ok;
    deep_doc["on"] = cell_json(deep_on);
    deep_doc["off"] = cell_json(deep_off);
    deep_doc["speedup"] = deep_speedup;
    deep_doc["speedup_ok"] = deep_speedup_ok;
  }

  all_checks_passed = all_checks_passed && zero_spawn_ok;
  if (!zero_spawn_ok) {
    std::fprintf(stderr,
                 "throughput campaign: a measured cell created pool threads "
                 "(per-decide spawns are back)\n");
  }

  const std::string out_path = args.get_string("out", "BENCH_throughput.json");
  if (!out_path.empty()) {
    obs::Json::Object doc;
    doc["schema"] = "recoverd.throughput.v1";
    doc["note"] =
        "Batched decision engine throughput (bench/throughput_campaign). batch = "
        "FleetDriver in Batch mode: per tick one action_values_batch call with "
        "cross-session root canonicalization plus one update_batch Bayes pass; "
        "loop = the same schedule through single-session action_values/"
        "update_belief (measured at min(sessions, loop-sessions) lanes — the "
        "per-decision rate there is width-independent). decisions_per_sec counts "
        "lanes decided per wall-clock second over the measured ticks. Absolute "
        "rates are machine-dependent; the committed claims are parity_ok "
        "(Batch and Loop fleets bitwise identical tick by tick), speedup >= "
        "10 at sessions >= 10000, the deep section (depth-2 whole-frontier "
        "expansion, DESIGN.md 16) at >= 1.5x over the classic per-class "
        "walks with bitwise Batch-vs-Loop and scalar-vs-auto parity, and "
        "zero_spawn_ok (no measured cell creates a work-pool thread).";
    doc["model"] = "emn-zombie-fleet";
    doc["simd"] = simd::describe_active_mode();
    doc["bound_size"] = static_cast<std::uint64_t>(set.size());
    doc["seed"] = static_cast<std::uint64_t>(setup.seed);
    doc["ticks"] = static_cast<std::uint64_t>(ticks);
    doc["warmup"] = static_cast<std::uint64_t>(warmup);
    doc["loop_sessions_cap"] = static_cast<std::uint64_t>(loop_sessions);
    obs::Json::Object pj;
    pj["sessions"] = static_cast<std::uint64_t>(parity_sessions);
    pj["ticks"] = static_cast<std::uint64_t>(parity_ticks);
    pj["ok"] = parity_ok;
    doc["parity"] = obs::Json(std::move(pj));
    doc["rows"] = obs::Json(std::move(rows));
    if (!deep_doc.empty()) doc["deep"] = obs::Json(std::move(deep_doc));
    doc["zero_spawn_ok"] = zero_spawn_ok;
    const util::WorkPool::Stats pool = util::WorkPool::instance().stats();
    obs::Json::Object pool_doc;
    pool_doc["dispatches"] = static_cast<std::uint64_t>(pool.dispatches);
    pool_doc["tasks"] = static_cast<std::uint64_t>(pool.tasks);
    pool_doc["inline_tasks"] = static_cast<std::uint64_t>(pool.inline_tasks);
    pool_doc["spawns_avoided"] = static_cast<std::uint64_t>(pool.spawns_avoided);
    pool_doc["threads_created"] = static_cast<std::uint64_t>(pool.threads_created);
    doc["pool"] = obs::Json(std::move(pool_doc));
    doc["all_checks_passed"] = all_checks_passed;
    std::ofstream out(out_path);
    RD_EXPECTS(out.good(), "throughput campaign: cannot open --out file");
    obs::Json(std::move(doc)).write(out);
    out << "\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (!all_checks_passed) {
    std::fprintf(stderr, "throughput campaign: CORRECTNESS CHECK FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known = {
      "sessions", "ticks",          "warmup",         "loop-sessions",
      "parity-sessions", "parity-ticks", "smoke",     "out",
      "top",      "seed",           "capacity",       "branch-floor",
      "termination-probability",    "bootstrap-runs", "bootstrap-depth",
      "jobs",     "memo",           "memo-max-mb",    "memo-carry",
      "deep-batch", "deep-depth",   "deep-sessions",  "deep-warmup"};
  const std::vector<std::string> robustness = recoverd::bench::robustness_flag_names();
  known.insert(known.end(), robustness.begin(), robustness.end());
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
