// Reproduces Figure 5(a): iterative improvement of the POMDP lower bound
// during the bootstrapping phase, for the Random and Average variants.
//
// The y-values are upper bounds on recovery cost: the negation of the
// lower-bound value V_B⁻ evaluated at the uniform belief {1/|S|}. The
// paper's claims, checked here:
//   - the bound improves monotonically with bootstrap iterations,
//   - tightening is rapid in the first few iterations, then slows,
//   - the Average variant tightens faster than Random on this model.
//
// Flags: --iterations=20 --depth=1 --seed=N --top=SECONDS plus the common
// EMN flags (see bench_common). Output: a table plus CSV rows
// (variant,iteration,upper_bound_on_cost).
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const auto iterations = static_cast<std::size_t>(args.get_int("iterations", 20));
  const int depth = static_cast<int>(args.get_int("depth", 1));

  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(recovery, setup.emn);

  // The paper evaluates at {1/|S|} on the original state space: uniform over
  // the 14 original states (sT excluded).
  std::vector<StateId> original_states;
  for (StateId s = 0; s < recovery.num_states(); ++s) {
    if (s != recovery.terminate_state()) original_states.push_back(s);
  }
  const Belief reference = Belief::uniform_over(recovery.num_states(), original_states);

  struct Series {
    const char* label;
    controller::BootstrapVariant variant;
    controller::BootstrapTrace trace;
    double initial = 0.0;
  };
  std::vector<Series> series{
      {"Random", controller::BootstrapVariant::Random, {}, 0.0},
      {"Average", controller::BootstrapVariant::Average, {}, 0.0},
  };

  for (auto& s : series) {
    // Unlimited storage by default: these figures demonstrate growth, and
    // capacity eviction would make the Fig. 5(a) series non-monotonic.
    const std::size_t capacity = args.has("capacity") ? setup.bound_capacity : 0;
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), capacity);
    s.initial = -set.evaluate(reference.probabilities());
    controller::BootstrapOptions opts;
    opts.iterations = iterations;
    opts.tree_depth = depth;
    opts.variant = s.variant;
    opts.seed = setup.seed;
    opts.observe_action = ids.topo.observe_action;
    s.trace = controller::bootstrap_bounds(recovery, set, reference, opts);
  }

  std::cout << "=== Figure 5(a): Iterative Bounds Improvement (EMN model) ===\n"
            << "Upper bound on cost = -V_B^-({1/|S|}); lower is tighter.\n\n";
  TextTable table;
  table.set_header({"Iteration", "Random", "Average"});
  table.add_row({"0 (RA-Bound)", TextTable::num(series[0].initial),
                 TextTable::num(series[1].initial)});
  for (std::size_t i = 0; i < iterations; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(-series[0].trace.bound_at_reference[i]),
                   TextTable::num(-series[1].trace.bound_at_reference[i])});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\nvariant,iteration,upper_bound_on_cost\n";
  CsvWriter csv(std::cout);
  for (const auto& s : series) {
    csv.write_row({std::string(s.label), "0", TextTable::num(s.initial, 6)});
    for (std::size_t i = 0; i < iterations; ++i) {
      csv.write_row({std::string(s.label), std::to_string(i + 1),
                     TextTable::num(-s.trace.bound_at_reference[i], 6)});
    }
  }

  // Shape checks mirrored from the paper's discussion.
  const auto& random_trace = series[0].trace.bound_at_reference;
  const auto& average_trace = series[1].trace.bound_at_reference;
  const double random_total = random_trace.back() - (-series[0].initial);
  const double early = random_trace[iterations / 4] - (-series[0].initial);
  std::cout << "\nShape: early-quarter improvement fraction (Random): "
            << (random_total > 0 ? early / random_total : 0.0)
            << " (paper: tightening is rapid at first, then slows)\n"
            << "Average final bound " << -average_trace.back() << " vs Random "
            << -random_trace.back()
            << " (paper: Average achieves a tighter bound on this model)\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"iterations", "depth", "top", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
