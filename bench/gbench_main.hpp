// Replacement for BENCHMARK_MAIN() in the google-benchmark microbenches:
// peels off recoverd's `--metrics-out=<path>` flag (benchmark::Initialize
// rejects flags it does not know), runs the suite, then dumps the global
// metrics registry so the perf trajectory of a bench run lands in the same
// machine-readable snapshot the experiment binaries emit.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/export.hpp"

namespace recoverd::bench {

inline int gbench_main_with_metrics(int argc, char** argv) {
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  std::string metrics_out;
  passthrough.push_back(argv[0]);
  constexpr std::string_view kFlag = "--metrics-out=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) {
      metrics_out = arg.substr(kFlag.size());
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    obs::write_metrics_file(metrics_out, obs::metrics().snapshot());
  }
  return 0;
}

}  // namespace recoverd::bench
