// Reproduces Figure 5(b): growth of the number of bound vectors
// (hyperplanes) in the lower-bound set during the bootstrapping phase, for
// the Random and Average variants.
//
// Paper claims checked: growth is at most linear (each update adds at most
// one vector), and the Average variant grows the set more slowly than
// Random on this model.
//
// Flags: --iterations=20 --depth=1 --seed=N --top=SECONDS plus common EMN
// flags. Output: table + CSV (variant,iteration,num_vectors).
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const auto iterations = static_cast<std::size_t>(args.get_int("iterations", 20));
  const int depth = static_cast<int>(args.get_int("depth", 1));

  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(recovery, setup.emn);
  std::vector<StateId> original_states;
  for (StateId s = 0; s < recovery.num_states(); ++s) {
    if (s != recovery.terminate_state()) original_states.push_back(s);
  }
  const Belief reference = Belief::uniform_over(recovery.num_states(), original_states);

  controller::BootstrapTrace random_trace, average_trace;
  std::size_t updates_per_iteration = 0;
  for (const auto variant :
       {controller::BootstrapVariant::Random, controller::BootstrapVariant::Average}) {
    // Unlimited storage by default: these figures demonstrate growth, and
    // capacity eviction would make the Fig. 5(a) series non-monotonic.
    const std::size_t capacity = args.has("capacity") ? setup.bound_capacity : 0;
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), capacity);
    controller::BootstrapOptions opts;
    opts.iterations = iterations;
    opts.tree_depth = depth;
    opts.variant = variant;
    opts.seed = setup.seed;
    opts.observe_action = ids.topo.observe_action;
    updates_per_iteration = opts.max_episode_steps;
    auto trace = controller::bootstrap_bounds(recovery, set, reference, opts);
    (variant == controller::BootstrapVariant::Random ? random_trace : average_trace) =
        std::move(trace);
  }

  std::cout << "=== Figure 5(b): Number of Bound Vectors vs Iteration (EMN model) ===\n\n";
  TextTable table;
  table.set_header({"Iteration", "Random", "Average"});
  table.add_row({"0 (RA-Bound)", "1", "1"});
  for (std::size_t i = 0; i < iterations; ++i) {
    table.add_row({std::to_string(i + 1), std::to_string(random_trace.set_sizes[i]),
                   std::to_string(average_trace.set_sizes[i])});
  }
  table.print(std::cout);

  std::cout << "\nCSV:\nvariant,iteration,num_vectors\n";
  CsvWriter csv(std::cout);
  for (std::size_t i = 0; i < iterations; ++i) {
    csv.write_row({"Random", std::to_string(i + 1),
                   std::to_string(random_trace.set_sizes[i])});
  }
  for (std::size_t i = 0; i < iterations; ++i) {
    csv.write_row({"Average", std::to_string(i + 1),
                   std::to_string(average_trace.set_sizes[i])});
  }

  std::cout << "\nShape: growth is bounded by " << updates_per_iteration
            << " updates/iteration (at most one vector each, §4.1); final sizes: Random "
            << random_trace.set_sizes.back() << ", Average "
            << average_trace.set_sizes.back()
            << ".\nNote: the paper's Fig. 5(b) shows Average growing more slowly than\n"
            << "Random; in this implementation Average grows *faster* because vectors\n"
            << "are only stored when they improve the bound and Average improves more\n"
            << "per iteration (see Fig. 5(a)). The linear-growth guarantee is what the\n"
            << "paper proves, and it holds either way.\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"iterations", "depth", "top", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
