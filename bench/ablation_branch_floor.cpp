// Ablation of this reproduction's one approximation knob: the observation-
// branch pruning floor of the Max-Avg tree. Verifies that the floor used by
// the Table 1 runs (1e-2) does not distort decisions — recovery quality is
// flat across floors while decision time drops by orders of magnitude.
//
// Flags: --faults=N (default 300) plus the common EMN flags.
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const auto faults = static_cast<std::size_t>(args.get_int("faults", 300));

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);
  const sim::EpisodeConfig config = make_emn_episode_config(base, ids);

  std::cout << "=== Ablation: observation-branch pruning floor (bounded controller) ===\n\n";
  TextTable table;
  table.set_header({"branch_floor", "Cost", "RecoveryTime(s)", "MonitorCalls",
                    "AlgTime(ms)", "Unrecovered"});

  for (const double floor : {0.0, 1e-3, 1e-2, 5e-2}) {
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
    controller::BootstrapOptions boot;
    boot.iterations = setup.bootstrap_runs;
    boot.tree_depth = 1;  // keep the exact-floor row affordable
    boot.observe_action = ids.topo.observe_action;
    boot.seed = setup.seed;
    boot.branch_floor = floor;
    controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()),
                                 boot);

    controller::BoundedControllerOptions opts;
    opts.branch_floor = floor;
    controller::BoundedController c(recovery, set, opts);
    const sim::ControllerFactory factory = [&recovery, set, opts] {
      return controller::BoundedController::make_owning(recovery, set, opts);
    };
    const auto result =
        run_campaign(base, c, factory, injector, faults, setup.seed, config, setup.jobs);
    table.add_row({TextTable::num(floor, 3), TextTable::num(result.cost.mean()),
                   TextTable::num(result.recovery_time.mean()),
                   TextTable::num(result.monitor_calls.mean()),
                   TextTable::num(result.algorithm_time_ms.mean(), 3),
                   std::to_string(result.unrecovered)});
    std::cerr << "floor=" << floor << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected: recovery quality (cost, monitor calls, unrecovered) is flat\n"
            << "across floors; only the decision time changes. This justifies using a\n"
            << "pruned tree for the Table 1 reproduction.\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"faults", "top", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth", "jobs"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
