// Extension experiment (§6 future work, implemented here): the
// branch-and-bound controller that pairs the Eq. 6 lower-bound set with a
// sawtooth upper bound. Reports, next to the plain bounded controller:
// per-fault recovery metrics, the average certified optimality gap of the
// first decision of each episode, and how many actions bound-dominance
// pruned per decision.
//
// Flags: --faults=N (default 500) plus the common EMN flags.
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/interval_controller.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  const EmnExperimentSetup setup = parse_emn_setup(args);
  const auto faults = static_cast<std::size_t>(args.get_int("faults", 300));

  const Pomdp base = models::make_emn_base(setup.emn);
  const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
  const models::EmnIds ids = models::emn_ids(base, setup.emn);
  const sim::FaultInjector injector = make_zombie_injector(base, ids);
  const sim::EpisodeConfig config = make_emn_episode_config(base, ids);

  auto bootstrap = [&](bounds::BoundSet& set) {
    controller::BootstrapOptions boot;
    boot.iterations = setup.bootstrap_runs;
    boot.tree_depth = setup.bootstrap_depth;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = setup.seed;
    boot.branch_floor = setup.branch_floor;
    controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()),
                                 boot);
  };

  std::vector<TableRow> rows;

  // Plain bounded controller (lower bound only).
  {
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
    bootstrap(set);
    controller::BoundedControllerOptions opts;
    opts.branch_floor = setup.branch_floor;
    controller::BoundedController c(recovery, set, opts);
    const sim::ControllerFactory factory = [&recovery, set, opts] {
      return controller::BoundedController::make_owning(recovery, set, opts);
    };
    rows.push_back({"Bounded", "1",
                    run_campaign(base, c, factory, injector, faults, setup.seed, config,
                                 setup.jobs)});
  }

  // Branch-and-bound controller (lower + sawtooth upper).
  double mean_first_gap = 0.0;
  double mean_pruned = 0.0;
  std::size_t upper_points = 0;
  {
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
    bootstrap(set);
    // The sawtooth point set defaults to unlimited storage: least-used
    // eviction hurts the upper bound far more than the lower (evicting a
    // tight point near the termination region re-loosens the bound there
    // and the optimistic action selection over-explores).
    const std::size_t upper_capacity =
        args.has("capacity") ? setup.bound_capacity : 0;
    bounds::SawtoothUpperBound upper(recovery, upper_capacity);
    controller::IntervalControllerOptions opts;
    opts.branch_floor = setup.branch_floor;
    controller::IntervalController c(recovery, set, upper, opts);

    // Instrumented campaign: reuse run_experiment for the metrics and make a
    // short instrumented pass for the gap/pruning statistics. Always serial
    // (ignores --jobs): the diagnostics below read the long-lived sawtooth
    // set the campaign grew, which per-episode controllers would discard.
    rows.push_back({"BranchBound", "1",
                    run_experiment(base, c, injector, faults, setup.seed, config)});

    Rng rng(setup.seed + 1);
    const std::size_t probes = std::min<std::size_t>(faults, 100);
    for (std::size_t i = 0; i < probes; ++i) {
      Rng episode_rng = rng.split();
      sim::Environment env(base, episode_rng.split());
      env.reset(injector.sample(episode_rng));
      c.begin_episode(Belief::uniform_over(recovery.num_states(),
                                           config.fault_support));
      const auto step = env.step(ids.topo.observe_action);
      c.record(ids.topo.observe_action, step.obs);
      (void)c.decide();
      mean_first_gap += c.last_decision().gap();
      mean_pruned += static_cast<double>(c.last_decision().actions_pruned);
    }
    mean_first_gap /= static_cast<double>(probes);
    mean_pruned /= static_cast<double>(probes);
    upper_points = upper.size();
  }

  std::cout << "=== Extension: branch-and-bound with sawtooth upper bounds ===\n\n";
  print_table1(std::cout, rows, faults);
  std::cout << "\nBranch-and-bound diagnostics (first decision of 100 probe episodes):\n"
            << "  mean certified optimality gap: " << TextTable::num(mean_first_gap)
            << " request-seconds\n"
            << "  mean actions pruned by bound dominance: "
            << TextTable::num(mean_pruned) << " of "
            << recovery.num_actions() << "\n"
            << "  sawtooth points stored: " << upper_points << "\n"
            << "\nThe §6 claim made concrete: upper bounds let the controller certify\n"
            << "per-decision optimality gaps and prune hopeless actions outright.\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"faults", "top", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth", "jobs"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
