// Parameterized SOR sweep: the relaxation factor must not change what the
// solver converges to — only how fast — across random substochastic systems
// and the RA chains of the bundled models.
#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/vector_ops.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "util/rng.hpp"

namespace recoverd::linalg {
namespace {

SparseMatrix random_substochastic(std::size_t n, double leak, Rng& rng) {
  SparseMatrixBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> w(n);
    double total = 0.0;
    for (auto& v : w) {
      v = rng.bernoulli(0.3) ? rng.uniform01() : 0.0;
      total += v;
    }
    if (total == 0.0) continue;
    const double scale = (1.0 - leak) / total;
    for (std::size_t j = 0; j < n; ++j) {
      if (w[j] > 0.0) b.add(i, j, w[j] * scale);
    }
  }
  return b.build();
}

class SorSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SorSweepTest, SameSolutionOnRandomSystems) {
  const double omega = GetParam();
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 20;
    const SparseMatrix q = random_substochastic(n, 0.15, rng);
    std::vector<double> c(n);
    for (auto& v : c) v = rng.uniform(-3.0, 0.0);

    const auto baseline = solve_fixed_point(q, c);
    ASSERT_TRUE(baseline.converged());

    GaussSeidelOptions opts;
    opts.relaxation = omega;
    const auto relaxed = solve_fixed_point(q, c, opts);
    ASSERT_TRUE(relaxed.converged()) << "omega " << omega;
    EXPECT_TRUE(approx_equal(baseline.x, relaxed.x, 1e-6));
  }
}

TEST_P(SorSweepTest, SameRaBoundOnEmn) {
  const double omega = GetParam();
  const Pomdp p = recoverd::models::make_emn_recovery_model();
  GaussSeidelOptions opts = recoverd::bounds::default_ra_solver_options();
  const auto baseline = recoverd::bounds::compute_ra_bound(p.mdp(), opts);
  ASSERT_TRUE(baseline.converged());

  opts.relaxation = omega;
  const auto swept = recoverd::bounds::compute_ra_bound(p.mdp(), opts);
  ASSERT_TRUE(swept.converged()) << "omega " << omega;
  EXPECT_TRUE(approx_equal(baseline.values, swept.values, 1e-6));
}

TEST_P(SorSweepTest, SameRaBoundOnTwoServer) {
  const double omega = GetParam();
  const Pomdp p = recoverd::models::make_two_server_with_notification();
  GaussSeidelOptions opts;
  opts.relaxation = omega;
  const auto swept = recoverd::bounds::compute_ra_bound(p.mdp(), opts);
  ASSERT_TRUE(swept.converged());
  const auto ids = recoverd::models::two_server_ids(p);
  EXPECT_NEAR(swept.values[ids.fault_a], -2.0, 1e-7);
}

// ω stays ≤ 1.2: SOR convergence is only guaranteed for mild over-relaxation
// on these non-symmetric systems (heavier ω can legitimately diverge, which
// the solver then reports — but that is not this suite's property).
INSTANTIATE_TEST_SUITE_P(Relaxations, SorSweepTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.1, 1.2),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "omega_" +
                                  std::to_string(static_cast<int>(info.param * 10));
                         });

}  // namespace
}  // namespace recoverd::linalg
