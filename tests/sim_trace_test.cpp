#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "bounds/ra_bound.hpp"
#include "obs/json.hpp"
#include "controller/bounded_controller.hpp"
#include "models/two_server.hpp"
#include "sim/experiment.hpp"
#include "util/check.hpp"

namespace recoverd::sim {
namespace {

TEST(EpisodeTrace, RecordsStepsInOrder) {
  EpisodeTrace trace;
  trace.set_injected_fault(2);
  trace.add_step({99 /*overwritten*/, 2, 0, 2, 1, -0.5, 1.0, 0.0});
  trace.add_step({99, 2, 1, 0, 2, -0.5, 2.0, 0.1});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.injected_fault(), 2u);
  EXPECT_EQ(trace.step(0).index, 0u);
  EXPECT_EQ(trace.step(1).index, 1u);
  EXPECT_EQ(trace.step(1).state_after, 0u);
  EXPECT_THROW(trace.step(2), PreconditionError);
}

TEST(EpisodeTrace, CsvExportHasHeaderAndRows) {
  EpisodeTrace trace;
  trace.add_step({0, 1, 2, 0, 3, -1.5, 4.0, 0.25});
  std::ostringstream os;
  trace.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("index,state_before,action"), std::string::npos);
  EXPECT_NE(out.find("-1.5"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
}

TEST(EpisodeTrace, HarnessFillsTraceConsistently) {
  const Pomdp base = models::make_two_server();
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(base);
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp());
  controller::BoundedController c(recovery, set);

  Environment env(base, Rng(5));
  EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};

  EpisodeTrace trace;
  const auto metrics = run_episode(env, c, ids.fault_a, config, &trace);

  EXPECT_EQ(trace.injected_fault(), ids.fault_a);
  EXPECT_EQ(trace.terminated(), metrics.terminated);
  // Step count = executed env steps = monitor calls + recovery actions.
  EXPECT_EQ(trace.size(), metrics.monitor_calls + metrics.recovery_actions);
  // The trace's clock and cost must reconcile with the metrics.
  EXPECT_DOUBLE_EQ(trace.step(trace.size() - 1).elapsed_after, metrics.recovery_time);
  double total_reward = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    total_reward += trace.step(i).reward;
    EXPECT_LE(trace.step(i).reward, 0.0);
    if (i > 0) {
      // The chain of states is consistent.
      EXPECT_EQ(trace.step(i).state_before, trace.step(i - 1).state_after);
      EXPECT_GE(trace.step(i).elapsed_after, trace.step(i - 1).elapsed_after);
    }
  }
  EXPECT_NEAR(-total_reward, metrics.cost, 1e-9);
  // The first step is the initial monitor reading.
  EXPECT_EQ(trace.step(0).action, ids.observe);
  EXPECT_EQ(trace.step(0).state_before, ids.fault_a);
}

TEST(EpisodeTrace, JsonlExportEmitsStepsAndEpisodeEnd) {
  EpisodeTrace trace;
  trace.set_injected_fault(3);
  trace.set_terminated(true);
  trace.add_step({0, 1, 2, 0, 3, -1.5, 4.0, 0.25, 0.69});
  trace.add_step({1, 0, 1, 2, 0, -0.5, 5.0, 0.5, 0.1});
  std::ostringstream os;
  trace.write_jsonl(os);

  std::istringstream lines(os.str());
  std::string line;
  std::vector<obs::Json> records;
  while (std::getline(lines, line)) records.push_back(obs::Json::parse(line));
  ASSERT_EQ(records.size(), 3u);  // two steps + episode_end

  EXPECT_EQ(records[0].at("type").as_string(), "step");
  EXPECT_EQ(records[0].at("step").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(records[0].at("reward").as_number(), -1.5);
  EXPECT_DOUBLE_EQ(records[0].at("belief_entropy").as_number(), 0.69);
  EXPECT_EQ(records[1].at("action").as_number(), 1.0);
  EXPECT_EQ(records[1].at("obs").as_number(), 0.0);

  const obs::Json& end = records[2];
  EXPECT_EQ(end.at("type").as_string(), "episode_end");
  EXPECT_EQ(end.at("injected_fault").as_number(), 3.0);
  EXPECT_TRUE(end.at("terminated").as_bool());
  EXPECT_EQ(end.at("steps").as_number(), 2.0);
}

TEST(EpisodeTrace, HarnessRecordsBeliefEntropy) {
  const Pomdp base = models::make_two_server();
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(base);
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp());
  controller::BoundedController c(recovery, set);
  Environment env(base, Rng(5));
  EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};

  EpisodeTrace trace;
  run_episode(env, c, ids.fault_a, config, &trace);
  ASSERT_GE(trace.size(), 1u);
  // Step 0 records the posterior after the initial monitor reading: at most
  // the entropy of the uniform prior over the two-fault support (ln 2 nats).
  EXPECT_LE(trace.step(0).belief_entropy, std::log(2.0) + 1e-9);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace.step(i).belief_entropy, 0.0);
    // Entropy of any belief over |S| states is bounded by ln |S|.
    EXPECT_LE(trace.step(i).belief_entropy,
              std::log(static_cast<double>(recovery.num_states())) + 1e-9);
  }
  // CSV export carries the entropy column.
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_NE(os.str().find("belief_entropy"), std::string::npos);
}

TEST(EpisodeTrace, ReusedTraceIsReset) {
  const Pomdp base = models::make_two_server();
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(base);
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp());
  controller::BoundedController c(recovery, set);
  Environment env(base, Rng(9));
  EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};

  EpisodeTrace trace;
  run_episode(env, c, ids.fault_a, config, &trace);
  const std::size_t first_size = trace.size();
  run_episode(env, c, ids.fault_b, config, &trace);
  EXPECT_EQ(trace.injected_fault(), ids.fault_b);
  EXPECT_LE(trace.size(), first_size + 50);  // fresh episode, not appended
  EXPECT_EQ(trace.step(0).state_before, ids.fault_b);
}

}  // namespace
}  // namespace recoverd::sim
