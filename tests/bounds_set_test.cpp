#include "bounds/bound_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace recoverd::bounds {
namespace {

TEST(BoundSet, EvaluateIsMaxOfHyperplanes) {
  BoundSet set(2);
  set.add({-4.0, 0.0});
  set.add({0.0, -4.0});
  const std::vector<double> left{1.0, 0.0};
  const std::vector<double> right{0.0, 1.0};
  const std::vector<double> mid{0.5, 0.5};
  EXPECT_DOUBLE_EQ(set.evaluate(left), 0.0);   // second plane wins at vertex 0
  EXPECT_DOUBLE_EQ(set.evaluate(right), 0.0);  // first plane wins at vertex 1
  EXPECT_DOUBLE_EQ(set.evaluate(mid), -2.0);
  EXPECT_EQ(set.size(), 2u);
}

TEST(BoundSet, NewcomerDominatedIsDropped) {
  BoundSet set(2);
  set.add({-1.0, -1.0});
  EXPECT_EQ(set.add({-2.0, -1.5}), BoundSet::AddResult::Dominated);
  EXPECT_EQ(set.size(), 1u);
  // Equal vector is also dominated (>= everywhere).
  EXPECT_EQ(set.add({-1.0, -1.0}), BoundSet::AddResult::Dominated);
}

TEST(BoundSet, DominatedExistingVectorsArePruned) {
  BoundSet set(2);
  set.add({-5.0, -5.0});  // protected base plane: never pruned
  set.add({-4.0, -1.0});
  set.add({-1.0, -4.0});
  EXPECT_EQ(set.size(), 3u);
  // Dominates both unprotected planes; base plane stays.
  set.add({-0.5, -0.5});
  EXPECT_EQ(set.size(), 2u);
  const std::vector<double> v{0.5, 0.5};
  EXPECT_DOUBLE_EQ(set.evaluate(v), -0.5);
}

TEST(BoundSet, CapacityEvictsLeastUsedUnprotected) {
  BoundSet set(2, 3);
  set.add({-10.0, -10.0});  // protected
  set.add({0.0, -20.0});    // wins at vertex 0
  set.add({-20.0, 0.0});    // wins at vertex 1
  // Heat up the vertex-0 winner.
  const std::vector<double> v0{1.0, 0.0};
  for (int i = 0; i < 5; ++i) set.evaluate(v0);
  // Adding a 4th vector evicts the least-used unprotected one (vertex-1 winner).
  set.add({-1.0, -1.0});
  EXPECT_EQ(set.size(), 3u);
  const std::vector<double> v1{0.0, 1.0};
  // The vertex-1 specialist is gone: best available is the newcomer at -1.
  EXPECT_DOUBLE_EQ(set.evaluate(v1), -1.0);
  EXPECT_DOUBLE_EQ(set.evaluate(v0), 0.0);  // heated vector survived
}

TEST(BoundSet, ProtectedVectorsSurviveEviction) {
  BoundSet set(1, 2);
  set.add({-3.0});  // protected automatically
  set.add({-2.0});
  set.add({-1.0});  // evicts -2.0, not the protected -3.0
  EXPECT_EQ(set.size(), 2u);
  bool has_base = false;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set.vector_at(i)[0] == -3.0) has_base = true;
  }
  EXPECT_TRUE(has_base);
}

TEST(BoundSet, ExplicitProtect) {
  BoundSet set(1, 2);
  set.add({-3.0});
  set.add({-2.0});
  set.protect(1);
  EXPECT_THROW(set.add({-1.0}), InvariantError);  // both slots protected, no victim
}

TEST(BoundSet, AddingNeverLowersTheBoundAnywhere) {
  BoundSet set(3);
  set.add({-5.0, -2.0, -7.0});
  const std::vector<std::vector<double>> beliefs{
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.2, 0.3, 0.5}, {1.0 / 3, 1.0 / 3, 1.0 / 3}};
  std::vector<double> before;
  before.reserve(beliefs.size());
  for (const auto& pi : beliefs) before.push_back(set.evaluate(pi));
  set.add({-6.0, -1.0, -6.5});
  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    EXPECT_GE(set.evaluate(beliefs[i]) + 1e-15, before[i]);
  }
}

TEST(BoundSet, UseCountsTrackWinners) {
  BoundSet set(2);
  set.add({0.0, -10.0});
  set.add({-10.0, 0.0});
  const std::vector<double> v0{1.0, 0.0};
  set.evaluate(v0);
  set.evaluate(v0);
  EXPECT_EQ(set.use_count(0), 2u);
  EXPECT_EQ(set.use_count(1), 0u);
}

TEST(BoundSet, Validation) {
  EXPECT_THROW(BoundSet(0), PreconditionError);
  BoundSet set(2);
  EXPECT_THROW(set.add({-1.0}), PreconditionError);  // wrong dimension
  const std::vector<double> pi{0.5, 0.5};
  EXPECT_THROW(set.evaluate(pi), PreconditionError);  // empty set
  set.add({-1.0, -1.0});
  const std::vector<double> bad{0.5, 0.25, 0.25};
  EXPECT_THROW(set.evaluate(bad), PreconditionError);
  EXPECT_THROW(set.vector_at(5), PreconditionError);
  EXPECT_THROW(set.protect(5), PreconditionError);
}

}  // namespace
}  // namespace recoverd::bounds
