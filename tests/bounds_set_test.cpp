#include "bounds/bound_set.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::bounds {
namespace {

TEST(BoundSet, EvaluateIsMaxOfHyperplanes) {
  BoundSet set(2);
  set.add({-4.0, 0.0});
  set.add({0.0, -4.0});
  const std::vector<double> left{1.0, 0.0};
  const std::vector<double> right{0.0, 1.0};
  const std::vector<double> mid{0.5, 0.5};
  EXPECT_DOUBLE_EQ(set.evaluate(left), 0.0);   // second plane wins at vertex 0
  EXPECT_DOUBLE_EQ(set.evaluate(right), 0.0);  // first plane wins at vertex 1
  EXPECT_DOUBLE_EQ(set.evaluate(mid), -2.0);
  EXPECT_EQ(set.size(), 2u);
}

TEST(BoundSet, NewcomerDominatedIsDropped) {
  BoundSet set(2);
  set.add({-1.0, -1.0});
  EXPECT_EQ(set.add({-2.0, -1.5}), BoundSet::AddResult::Dominated);
  EXPECT_EQ(set.size(), 1u);
  // Equal vector is also dominated (>= everywhere).
  EXPECT_EQ(set.add({-1.0, -1.0}), BoundSet::AddResult::Dominated);
}

TEST(BoundSet, DominatedExistingVectorsArePruned) {
  BoundSet set(2);
  set.add({-5.0, -5.0});  // protected base plane: never pruned
  set.add({-4.0, -1.0});
  set.add({-1.0, -4.0});
  EXPECT_EQ(set.size(), 3u);
  // Dominates both unprotected planes; base plane stays.
  set.add({-0.5, -0.5});
  EXPECT_EQ(set.size(), 2u);
  const std::vector<double> v{0.5, 0.5};
  EXPECT_DOUBLE_EQ(set.evaluate(v), -0.5);
}

TEST(BoundSet, CapacityEvictsLeastUsedUnprotected) {
  BoundSet set(2, 3);
  set.add({-10.0, -10.0});  // protected
  set.add({0.0, -20.0});    // wins at vertex 0
  set.add({-20.0, 0.0});    // wins at vertex 1
  // Heat up the vertex-0 winner.
  const std::vector<double> v0{1.0, 0.0};
  for (int i = 0; i < 5; ++i) set.evaluate(v0);
  // Adding a 4th vector evicts the least-used unprotected one (vertex-1 winner).
  set.add({-1.0, -1.0});
  EXPECT_EQ(set.size(), 3u);
  const std::vector<double> v1{0.0, 1.0};
  // The vertex-1 specialist is gone: best available is the newcomer at -1.
  EXPECT_DOUBLE_EQ(set.evaluate(v1), -1.0);
  EXPECT_DOUBLE_EQ(set.evaluate(v0), 0.0);  // heated vector survived
}

TEST(BoundSet, ProtectedVectorsSurviveEviction) {
  BoundSet set(1, 2);
  set.add({-3.0});  // protected automatically
  set.add({-2.0});
  set.add({-1.0});  // evicts -2.0, not the protected -3.0
  EXPECT_EQ(set.size(), 2u);
  bool has_base = false;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set.vector_at(i)[0] == -3.0) has_base = true;
  }
  EXPECT_TRUE(has_base);
}

TEST(BoundSet, ExplicitProtect) {
  BoundSet set(1, 2);
  set.add({-3.0});
  set.add({-2.0});
  set.protect(1);
  EXPECT_THROW(set.add({-1.0}), InvariantError);  // both slots protected, no victim
}

TEST(BoundSet, AddingNeverLowersTheBoundAnywhere) {
  BoundSet set(3);
  set.add({-5.0, -2.0, -7.0});
  const std::vector<std::vector<double>> beliefs{
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.2, 0.3, 0.5}, {1.0 / 3, 1.0 / 3, 1.0 / 3}};
  std::vector<double> before;
  before.reserve(beliefs.size());
  for (const auto& pi : beliefs) before.push_back(set.evaluate(pi));
  set.add({-6.0, -1.0, -6.5});
  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    EXPECT_GE(set.evaluate(beliefs[i]) + 1e-15, before[i]);
  }
}

TEST(BoundSet, UseCountsTrackWinners) {
  BoundSet set(2);
  set.add({0.0, -10.0});
  set.add({-10.0, 0.0});
  const std::vector<double> v0{1.0, 0.0};
  set.evaluate(v0);
  set.evaluate(v0);
  EXPECT_EQ(set.use_count(0), 2u);
  EXPECT_EQ(set.use_count(1), 0u);
}

// --- Pruned hot-path scan: exactness against the naive ascending scan ---

// The naive reference the pruned kernel must reproduce bitwise: dot every
// stored plane in ascending index order, ties to the lowest index.
struct NaiveBest {
  double value = -std::numeric_limits<double>::infinity();
  std::size_t winner = 0;
};

NaiveBest naive_scan(const BoundSet& set, std::span<const double> belief) {
  NaiveBest best;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const double v = recoverd::linalg::dot(set.vector_at(i), belief);
    if (v > best.value) {
      best.value = v;
      best.winner = i;
    }
  }
  return best;
}

BoundSet make_random_set(recoverd::Rng& rng, std::size_t dimension,
                         std::size_t planes) {
  BoundSet set(dimension);
  for (std::size_t k = 0; k < planes; ++k) {
    BoundVector v(dimension);
    // Mix of near-flat and spiky planes so prune keys actually skip some
    // but not all, and some dots tie.
    const double base = -rng.uniform(0.0, 30.0);
    for (auto& x : v) x = rng.bernoulli(0.3) ? base : base - rng.uniform(0.0, 20.0);
    set.add(std::move(v));
  }
  return set;
}

std::vector<double> make_random_belief(recoverd::Rng& rng, std::size_t dimension) {
  std::vector<double> pi(dimension, 0.0);
  for (auto& x : pi) {
    if (rng.bernoulli(0.7)) x = rng.uniform(0.0, 1.0);
  }
  double total = 0.0;
  for (double x : pi) total += x;
  if (total <= 0.0) pi[0] = 1.0;
  return pi;
}

TEST(BoundSetPruned, ScanMatchesNaiveValueWinnerAndUseCount) {
  recoverd::Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dim = 2 + rng.uniform_index(14);
    const std::size_t planes = 1 + rng.uniform_index(20);
    const BoundSet set = make_random_set(rng, dim, planes);
    const std::vector<double> pi = make_random_belief(rng, dim);
    const NaiveBest ref = naive_scan(set, pi);
    const std::size_t uses_before = set.use_count(ref.winner);
    EXPECT_EQ(set.evaluate(pi), ref.value) << "trial " << trial;
    EXPECT_EQ(set.best_index(pi), ref.winner) << "trial " << trial;
    // evaluate() recorded its use on exactly the naive winner (best_index
    // is a pure query and records nothing).
    EXPECT_EQ(set.use_count(ref.winner), uses_before + 1) << "trial " << trial;
  }
}

TEST(BoundSetPruned, WarmStartPathIsBitIdenticalAndHits) {
  recoverd::Rng rng(777);
  const BoundSet set = make_random_set(rng, 8, 12);
  BoundSet::EvalScratch scratch;
  set.begin_eval(scratch);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> pi = make_random_belief(rng, 8);
    const NaiveBest ref = naive_scan(set, pi);
    EXPECT_EQ(set.evaluate(pi, scratch), ref.value) << "trial " << trial;
    EXPECT_EQ(scratch.warm, ref.winner) << "trial " << trial;
  }
  EXPECT_EQ(scratch.evaluations, 100u);
  // Random beliefs over few planes revisit winners, so the warm start must
  // land at least once — and the prune keys must have skipped work.
  EXPECT_GT(scratch.warm_start_hits, 0u);
  EXPECT_GT(scratch.planes_skipped, 0u);
}

TEST(BoundSetPruned, BatchIsBitIdenticalToSequentialEvaluate) {
  recoverd::Rng rng(4242);
  const BoundSet set = make_random_set(rng, 6, 10);
  constexpr std::size_t kRows = 64;
  std::vector<double> rows(kRows * 6);
  for (auto& x : rows) x = rng.bernoulli(0.8) ? rng.uniform(0.0, 1.0) : 0.0;
  for (std::size_t r = 0; r < kRows; ++r) {
    if (recoverd::linalg::sum(std::span<const double>(rows).subspan(r * 6, 6)) <= 0.0) {
      rows[r * 6] = 1.0;
    }
  }

  BoundSet::EvalScratch seq;
  set.begin_eval(seq);
  std::vector<double> expected(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    expected[r] = set.evaluate({rows.data() + r * 6, 6}, seq);
  }

  BoundSet::EvalScratch batched;
  set.begin_eval(batched);
  std::vector<double> got(kRows);
  for (std::size_t chunk = 0; chunk < kRows; chunk += 16) {
    set.evaluate_batch(rows.data() + chunk * 6, 16,
                       std::span<double>(got).subspan(chunk, 16), batched);
  }
  for (std::size_t r = 0; r < kRows; ++r) EXPECT_EQ(expected[r], got[r]) << "row " << r;
  // Same winners → same local win tallies, and the warm start chained
  // identically across rows.
  ASSERT_EQ(seq.wins.size(), batched.wins.size());
  for (std::size_t i = 0; i < seq.wins.size(); ++i) {
    EXPECT_EQ(seq.wins[i], batched.wins[i]) << "plane " << i;
  }
  EXPECT_EQ(seq.warm, batched.warm);
  EXPECT_EQ(batched.batch_calls, 4u);
}

TEST(BoundSetPruned, FlushAppliesWinsOnceAndZeroesTheScratch) {
  recoverd::Rng rng(99);
  const BoundSet set = make_random_set(rng, 4, 6);
  std::vector<std::size_t> uses_before(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) uses_before[i] = set.use_count(i);

  BoundSet::EvalScratch scratch;
  set.begin_eval(scratch);
  std::vector<std::uint64_t> expected_wins(set.size(), 0);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> pi = make_random_belief(rng, 4);
    ++expected_wins[naive_scan(set, pi).winner];
    (void)set.evaluate(pi, scratch);
  }
  // Nothing published until the flush.
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.use_count(i), uses_before[i]) << "plane " << i;
  }
  set.flush_eval(scratch);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.use_count(i), uses_before[i] + expected_wins[i]) << "plane " << i;
    EXPECT_EQ(scratch.wins[i], 0u);
  }
  EXPECT_EQ(scratch.evaluations, 0u);
  // A second flush is a no-op.
  set.flush_eval(scratch);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.use_count(i), uses_before[i] + expected_wins[i]);
  }
}

TEST(BoundSet, Validation) {
  EXPECT_THROW(BoundSet(0), PreconditionError);
  BoundSet set(2);
  EXPECT_THROW(set.add({-1.0}), PreconditionError);  // wrong dimension
  const std::vector<double> pi{0.5, 0.5};
  EXPECT_THROW(set.evaluate(pi), PreconditionError);  // empty set
  set.add({-1.0, -1.0});
  const std::vector<double> bad{0.5, 0.25, 0.25};
  EXPECT_THROW(set.evaluate(bad), PreconditionError);
  EXPECT_THROW(set.vector_at(5), PreconditionError);
  EXPECT_THROW(set.protect(5), PreconditionError);
}

}  // namespace
}  // namespace recoverd::bounds
