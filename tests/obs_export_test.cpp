#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace recoverd::obs {
namespace {

// A registry with one instrument of each kind and known values.
void populate(MetricsRegistry& reg) {
  reg.counter("linalg.gauss_seidel.sweeps").add(16);
  reg.gauge("bounds.set.size").set(43.0);
  Histogram& h = reg.histogram("controller.bounded.decide_ms", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
}

TEST(Json, EscapesQuotesBackslashesAndControlChars) {
  // Regression: names containing quotes, backslashes, or control characters
  // must survive a write → parse round-trip unchanged.
  Json::Object obj;
  const std::string awkward = "he said \"hi\\there\"\x01\n\twith\x1f controls";
  obj[awkward] = Json(std::string("\"\\\b\f\n\r\t\x00\x1e", 9));
  std::ostringstream os;
  Json(std::move(obj)).write(os);
  const std::string text = os.str();
  // Raw control bytes must never reach the output stream.
  for (const char c : text) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  const Json back = Json::parse(text);
  ASSERT_TRUE(back.contains(awkward));
  EXPECT_EQ(back.at(awkward).as_string(), std::string("\"\\\b\f\n\r\t\x00\x1e", 9));
}

TEST(Json, ParsesSurrogatePairsAsSingleCodePoints) {
  // 😀 is U+1F600; the pair must decode to one 4-byte UTF-8
  // sequence, not two 3-byte CESU-8 halves.
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
  // A lone high surrogate stays lenient (no throw), and a high surrogate
  // followed by a non-surrogate escape must not swallow the second escape.
  EXPECT_EQ(Json::parse("\"\\uD83D\\u0041\"").as_string().back(), 'A');
  // Round-trip: the writer re-escapes the astral code point or emits raw
  // UTF-8; either way the parse must return the identical string.
  Json::Object obj;
  obj["emoji"] = Json(std::string("\xF0\x9F\x98\x80"));
  std::ostringstream os;
  Json(std::move(obj)).write(os);
  EXPECT_EQ(Json::parse(os.str()).at("emoji").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, ParsesScalarsAndContainers) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(Json::parse("\"a\\n\\\"b\\\"\\u0041\"").as_string(), "a\n\"b\"A");
  const Json arr = Json::parse(" [1, 2, [3]] ");
  ASSERT_EQ(arr.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(arr.as_array()[2].as_array()[0].as_number(), 3.0);
  const Json obj = Json::parse("{\"k\": {\"nested\": true}, \"n\": 7}");
  EXPECT_TRUE(obj.contains("k"));
  EXPECT_FALSE(obj.contains("missing"));
  EXPECT_TRUE(obj.at("k").at("nested").as_bool());
  EXPECT_DOUBLE_EQ(obj.at("n").as_number(), 7.0);
  EXPECT_THROW(obj.at("missing"), PreconditionError);
  EXPECT_THROW(obj.as_array(), PreconditionError);
}

TEST(Json, DumpIsCompactSortedAndRoundTrips) {
  Json::Object o;
  o["b"] = Json(2);
  o["a"] = Json(std::string("x"));
  o["c"] = Json(Json::Array{Json(true), Json(nullptr)});
  const std::string text = Json(o).dump();
  EXPECT_EQ(text, "{\"a\":\"x\",\"b\":2,\"c\":[true,null]}");
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, IntegersWithin2To53PrintWithoutFraction) {
  EXPECT_EQ(Json(std::uint64_t{9007199254740992ull}).dump(), "9007199254740992");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json::parse(Json(std::uint64_t{1536}).dump()).as_number(), 1536.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ModelError);
  EXPECT_THROW(Json::parse("{"), ModelError);
  EXPECT_THROW(Json::parse("[1,]"), ModelError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), ModelError);
  EXPECT_THROW(Json::parse("{'a':1}"), ModelError);
  EXPECT_THROW(Json::parse("nul"), ModelError);
  EXPECT_THROW(Json::parse("1 2"), ModelError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), ModelError);
  EXPECT_THROW(Json::parse("\"bad\\q\""), ModelError);
}

TEST(Export, JsonRoundTripsThroughReadJson) {
  MetricsRegistry reg;
  populate(reg);
  std::ostringstream os;
  write_json(os, reg.snapshot());

  const MetricsSnapshot back = read_json_text(os.str());
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].name, "linalg.gauss_seidel.sweeps");
  EXPECT_EQ(back.counters[0].value, 16u);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(back.gauges[0].value, 43.0);
  ASSERT_EQ(back.histograms.size(), 1u);
  const HistogramSample& h = back.histograms[0];
  EXPECT_EQ(h.uppers, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 1, 0, 1}));
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 12.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 10.0);
}

TEST(Export, ReadJsonValidatesSchema) {
  EXPECT_THROW(read_json_text("{}"), ModelError);
  EXPECT_THROW(read_json_text("{\"schema\":\"other.v9\",\"counters\":{},"
                              "\"gauges\":{},\"histograms\":{}}"),
               ModelError);
  // Histogram with mismatched uppers/counts lengths must be rejected
  // (counts must have uppers.size() + 1 entries).
  EXPECT_THROW(
      read_json_text("{\"schema\":\"recoverd.metrics.v1\",\"counters\":{},"
                     "\"gauges\":{},\"histograms\":{\"h\":{\"uppers\":[1],"
                     "\"counts\":[1],\"count\":1,\"sum\":1,\"min\":1,\"max\":1}}}"),
      PreconditionError);
}

TEST(Export, CsvEmitsOneRowPerScalar) {
  MetricsRegistry reg;
  populate(reg);
  std::ostringstream os;
  write_csv(os, reg.snapshot());
  const std::string out = os.str();

  std::istringstream lines(out);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0], "metric,kind,field,value");
  // 1 counter + 1 gauge + histogram (count/sum/min/max + p50/p90/p99 +
  // 4 buckets) = 13 rows.
  EXPECT_EQ(rows.size(), 1u + 1u + 1u + 11u);
  EXPECT_NE(out.find("linalg.gauss_seidel.sweeps,counter,value,16"), std::string::npos);
  EXPECT_NE(out.find("bounds.set.size,gauge,value,43"), std::string::npos);
  EXPECT_NE(out.find("controller.bounded.decide_ms,histogram,count,3"), std::string::npos);
  EXPECT_NE(out.find(",histogram,le_1,1"), std::string::npos);
  EXPECT_NE(out.find(",histogram,le_inf,1"), std::string::npos);
}

TEST(Export, WriteMetricsFilePicksFormatByExtension) {
  MetricsRegistry reg;
  populate(reg);
  const std::string json_path = testing::TempDir() + "obs_export_test.json";
  const std::string csv_path = testing::TempDir() + "obs_export_test.csv";

  write_metrics_file(json_path, reg.snapshot());
  std::ifstream jf(json_path);
  std::stringstream jbuf;
  jbuf << jf.rdbuf();
  const MetricsSnapshot back = read_json_text(jbuf.str());
  EXPECT_EQ(back.counters.size(), 1u);

  write_metrics_file(csv_path, reg.snapshot());
  std::ifstream cf(csv_path);
  std::string header;
  std::getline(cf, header);
  EXPECT_EQ(header, "metric,kind,field,value");

  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());

  EXPECT_THROW(write_metrics_file("/nonexistent-dir/metrics.json", reg.snapshot()),
               ModelError);
}

TEST(Export, DumpMetricsIfRequestedHonoursFlag) {
  MetricsRegistry reg;
  populate(reg);
  const std::string path = testing::TempDir() + "obs_dump_test.json";
  const std::string flag = "--metrics-out=" + path;
  const char* with_flag[] = {"prog", flag.c_str()};
  const char* without_flag[] = {"prog"};

  EXPECT_FALSE(dump_metrics_if_requested(CliArgs(1, without_flag), reg));
  EXPECT_TRUE(dump_metrics_if_requested(CliArgs(2, with_flag), reg));
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  const MetricsSnapshot back = read_json_text(buf.str());
  // populate() adds one gauge; the dump path also publishes the six pool.*
  // work-pool gauges (publish_work_pool_metrics) before snapshotting.
  EXPECT_EQ(back.gauges.size(), 7u);
  const auto has_gauge = [&](const std::string& name) {
    for (const auto& g : back.gauges) {
      if (g.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_gauge("pool.tasks"));
  EXPECT_TRUE(has_gauge("pool.spawns_avoided"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace recoverd::obs
