#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/policy_controller.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "pomdp/policy.hpp"
#include "pomdp/reachability.hpp"
#include "pomdp/value_iteration.hpp"
#include "sim/experiment.hpp"
#include "util/check.hpp"

namespace recoverd {
namespace {

// ---------- reachability ----------

TEST(Reachability, PerfectObservationCollapsesToFewBeliefs) {
  // With perfect monitors, every posterior is (nearly) a point mass: the
  // reachable set from any root saturates at a handful of beliefs.
  models::TwoServerParams params;
  params.coverage = 1.0;
  params.false_positive = 0.0;
  const Pomdp p = models::make_two_server(params);
  ReachabilityOptions opts;
  opts.max_depth = 6;
  const auto result =
      enumerate_reachable_beliefs(p, Belief::uniform(p.num_states()), opts);
  EXPECT_TRUE(result.saturated);
  EXPECT_LE(result.beliefs.size(), 12u);
}

TEST(Reachability, NoisyObservationGrowsTheSet) {
  const Pomdp p = models::make_two_server();
  ReachabilityOptions opts;
  opts.max_depth = 3;
  const auto noisy =
      enumerate_reachable_beliefs(p, Belief::uniform(p.num_states()), opts);

  models::TwoServerParams perfect_params;
  perfect_params.coverage = 1.0;
  perfect_params.false_positive = 0.0;
  const Pomdp perfect = models::make_two_server(perfect_params);
  const auto crisp =
      enumerate_reachable_beliefs(perfect, Belief::uniform(p.num_states()), opts);
  EXPECT_GT(noisy.beliefs.size(), crisp.beliefs.size());
}

TEST(Reachability, DepthCountsAndRootIncluded) {
  const Pomdp p = models::make_two_server();
  ReachabilityOptions opts;
  opts.max_depth = 2;
  const Belief root = Belief::point(p.num_states(), 1);
  const auto result = enumerate_reachable_beliefs(p, root, opts);
  ASSERT_GE(result.beliefs.size(), 1u);
  EXPECT_LT(result.beliefs[0].distance(root), 1e-12);
  EXPECT_EQ(result.depth_counts.size(),
            result.saturated ? result.depth_counts.size() : 2u);
}

TEST(Reachability, TruncationCapRespected) {
  const Pomdp p = models::make_emn_base();
  ReachabilityOptions opts;
  opts.max_depth = 4;
  opts.max_beliefs = 50;
  const auto result =
      enumerate_reachable_beliefs(p, Belief::uniform(p.num_states()), opts);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.beliefs.size(), 50u);
}

TEST(Reachability, Validation) {
  const Pomdp p = models::make_two_server();
  EXPECT_THROW(enumerate_reachable_beliefs(p, Belief::uniform(7)), PreconditionError);
}

// ---------- fixed-policy (MLS) controller ----------

TEST(PolicyController, PlaysThePolicyOfTheMostLikelyState) {
  const Pomdp p = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(p);
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  controller::PolicyController c(p, vi.policy);
  c.begin_episode(Belief::point(p.num_states(), ids.fault_b));
  const controller::Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids.restart_b);
}

TEST(PolicyController, TerminatesAtGoalCertainty) {
  // At the point-Null belief the done-mass threshold fires regardless of
  // which zero-cost action the MDP policy happens to pick there (Observe
  // ties with aT at Null on this model — a free action).
  const Pomdp p = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(p);
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  controller::PolicyController c(p, vi.policy);
  c.begin_episode(Belief::point(p.num_states(), ids.null_state));
  EXPECT_TRUE(c.decide().terminate);
}

TEST(PolicyController, RecoversInFullEpisodes) {
  const Pomdp base = models::make_two_server();
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(base);
  const auto vi = value_iteration(recovery.mdp());
  ASSERT_TRUE(vi.converged());
  controller::PolicyController c(recovery, vi.policy);

  sim::FaultInjector injector({ids.fault_a, ids.fault_b});
  sim::EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};
  const auto result = sim::run_experiment(base, c, injector, 150, 17, config);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
}

TEST(PolicyController, BoundedBeatsOrMatchesMlsOnEmn) {
  // The belief-aware bounded controller should not lose to the MLS policy
  // baseline (the whole point of planning in belief space).
  const Pomdp base = models::make_emn_base();
  const Pomdp recovery = models::make_emn_recovery_model();
  const models::EmnIds ids = models::emn_ids(base);
  const auto vi = value_iteration(recovery.mdp());
  ASSERT_TRUE(vi.converged());

  std::vector<StateId> zombies(ids.topo.zombie_states.begin(),
                               ids.topo.zombie_states.end());
  sim::FaultInjector injector(zombies);
  sim::EpisodeConfig config;
  config.observe_action = ids.topo.observe_action;
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (!base.mdp().is_goal(s)) config.fault_support.push_back(s);
  }

  controller::PolicyController mls(recovery, vi.policy);
  const auto mls_result = sim::run_experiment(base, mls, injector, 150, 41, config);

  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp());
  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController bounded(recovery, set, opts);
  const auto bounded_result =
      sim::run_experiment(base, bounded, injector, 150, 41, config);

  // The bounded controller never quits with the fault in place.
  EXPECT_EQ(bounded_result.unrecovered, 0u);
  // The MLS baseline either exhibits its known weakness (terminating on a
  // wrong most-likely diagnosis at least once) or, when it does recover
  // everything, pays at least as much as the belief-aware controller.
  if (mls_result.unrecovered == 0) {
    EXPECT_LE(bounded_result.cost.mean(),
              mls_result.cost.mean() + mls_result.cost.ci95_halfwidth() +
                  bounded_result.cost.ci95_halfwidth());
  } else {
    SUCCEED() << "MLS quit early on " << mls_result.unrecovered << " episodes";
  }
}

TEST(PolicyController, Validation) {
  const Pomdp p = models::make_two_server();
  EXPECT_THROW(controller::PolicyController(p, Policy{}), PreconditionError);
  EXPECT_THROW(controller::PolicyController(p, Policy(p.num_states(), 99)),
               PreconditionError);
}

}  // namespace
}  // namespace recoverd
