// Exactness suite for memo *carry-over* (cross-decide/cross-episode cache
// reuse, ExpansionOptions::memo_carry): on 120 randomized recovery POMDPs,
// a sequence of expansions with the carried cache must reproduce the
// per-call-cleared walk BIT FOR BIT — same values, same chosen actions —
// across depths, masks, floors, root_jobs fan-outs, and across a
// memo_context bump mid-sequence (the exact-invalidation contract: the
// carried cache is discarded, values computed fresh, and the invalidation
// tallied). The carry counters themselves are pinned on a colliding model.
#include "pomdp/expansion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "pomdp/belief.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

// Random but valid recovery POMDP, the same shape the memo and expansion
// parity suites use: state 0 is the goal, action 0 repairs downward, and
// observation rows mix large and tiny entries so branch floors prune some
// branches but not all.
Pomdp make_random_pomdp(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_states = 3 + rng.uniform_index(5);   // 3..7
  const std::size_t num_actions = 2 + rng.uniform_index(3);  // 2..4
  const std::size_t num_obs = 2 + rng.uniform_index(4);      // 2..5

  PomdpBuilder b;
  for (StateId s = 0; s < num_states; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -rng.uniform(0.05, 1.0));
  }
  b.mark_goal(0);
  for (ActionId a = 0; a < num_actions; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    b.add_action(name, rng.uniform(0.5, 10.0));
  }
  for (ObsId o = 0; o < num_obs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<StateId> targets;
      if (s > 0 && a == 0) targets.push_back(rng.uniform_index(s));
      targets.push_back(rng.uniform_index(num_states));
      if (rng.bernoulli(0.5)) targets.push_back(rng.uniform_index(num_states));
      std::vector<double> row(num_states, 0.0);
      double total = 0.0;
      std::vector<double> weights(targets.size());
      for (auto& w : weights) {
        w = rng.uniform(0.1, 1.0);
        total += w;
      }
      for (std::size_t i = 0; i < targets.size(); ++i) {
        row[targets[i]] += weights[i] / total;
      }
      for (StateId t = 0; t < num_states; ++t) {
        if (row[t] > 0.0) b.set_transition(s, a, t, row[t]);
      }
      if (rng.bernoulli(0.3)) b.set_impulse_reward(s, a, -rng.uniform(0.0, 2.0));
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<double> row(num_obs);
      double total = 0.0;
      for (auto& v : row) {
        v = rng.bernoulli(0.4) ? rng.uniform(0.5, 1.0) : rng.uniform(0.001, 0.05);
        total += v;
      }
      for (ObsId o = 0; o < num_obs; ++o) b.set_observation(s, a, o, row[o] / total);
    }
  }
  return b.build();
}

// Piecewise-linear leaf (max over random hyperplanes), shaped like the
// BoundSet evaluations the controllers use.
struct SawLeaf {
  std::vector<std::vector<double>> planes;

  static SawLeaf random(std::size_t num_states, Rng& rng) {
    SawLeaf leaf;
    const std::size_t n = 1 + rng.uniform_index(3);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> w(num_states);
      for (auto& v : w) v = -rng.uniform(0.0, 50.0);
      leaf.planes.push_back(std::move(w));
    }
    return leaf;
  }

  double operator()(std::span<const double> pi) const {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& w : planes) best = std::max(best, linalg::dot(w, pi));
    return best;
  }
};

// One carry case: a model, a leaf, a *sequence* of root beliefs (the shape
// of consecutive decides in one episode), and seed-derived knobs.
struct CarryCase {
  Pomdp pomdp;
  std::vector<Belief> roots;
  SawLeaf leaf;
  int depth;
  double beta;
  ActionId skip;
  double floor;
};

CarryCase make_case(std::uint64_t seed) {
  CarryCase c{make_random_pomdp(seed), {}, {}, 1, 1.0, kInvalidId, 0.0};
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const std::size_t num_roots = 3 + rng.uniform_index(3);  // 3..5 decides
  for (std::size_t k = 0; k < num_roots; ++k) {
    std::vector<double> pi(c.pomdp.num_states());
    for (auto& v : pi) v = rng.uniform(0.01, 1.0);
    c.roots.emplace_back(std::move(pi));  // Belief normalises
  }
  c.leaf = SawLeaf::random(c.pomdp.num_states(), rng);
  c.depth = 1 + static_cast<int>(rng.uniform_index(3));  // 1..3
  c.beta = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.5, 1.0);
  c.skip = rng.bernoulli(0.3) ? ActionId{0} : kInvalidId;
  const double floors[] = {0.0, 1e-3, 5e-2, 0.2};
  c.floor = floors[rng.uniform_index(4)];
  return c;
}

ExpansionOptions carry_options(const CarryCase& c, bool carry,
                               std::uint64_t context = 1) {
  ExpansionOptions opts;
  opts.beta = c.beta;
  opts.skip_action = c.skip;
  opts.branch_floor = c.floor;
  opts.memo = true;
  opts.memo_carry = carry;
  opts.memo_context = context;
  return opts;
}

void run_sequence(const CarryCase& c, ExpansionEngine& engine,
                  const ExpansionOptions& opts,
                  std::vector<std::vector<ActionValue>>& out) {
  out.clear();
  for (const Belief& root : c.roots) {
    std::vector<ActionValue> values;
    engine.action_values(root.probabilities(), c.depth, SpanLeaf::of(c.leaf), opts,
                         values);
    out.push_back(std::move(values));
  }
}

void expect_sequences_equal(const std::vector<std::vector<ActionValue>>& a,
                            const std::vector<std::vector<ActionValue>>& b,
                            std::uint64_t seed, const char* label) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    ASSERT_EQ(a[d].size(), b[d].size());
    for (std::size_t i = 0; i < a[d].size(); ++i) {
      EXPECT_EQ(a[d][i].action, b[d][i].action)
          << label << " seed=" << seed << " decide=" << d << " action=" << i;
      EXPECT_EQ(a[d][i].value, b[d][i].value)
          << label << " seed=" << seed << " decide=" << d << " action=" << i;
    }
  }
}

class CarryParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CarryParityTest, DecideSequenceMatchesCarryOffBitwise) {
  const CarryCase c = make_case(GetParam());
  ExpansionEngine off_engine(c.pomdp);
  ExpansionEngine on_engine(c.pomdp);
  std::vector<std::vector<ActionValue>> off;
  std::vector<std::vector<ActionValue>> on;
  run_sequence(c, off_engine, carry_options(c, false), off);
  run_sequence(c, on_engine, carry_options(c, true), on);
  expect_sequences_equal(off, on, GetParam(), "carry on/off");
}

TEST_P(CarryParityTest, RootJobsInvariantWithCarryOn) {
  const CarryCase c = make_case(GetParam());
  ExpansionEngine serial_engine(c.pomdp);
  ExpansionEngine fanout_engine(c.pomdp);
  ExpansionOptions serial = carry_options(c, true);
  ExpansionOptions fanout = serial;
  fanout.root_jobs = 3;
  std::vector<std::vector<ActionValue>> serial_out;
  std::vector<std::vector<ActionValue>> fanout_out;
  run_sequence(c, serial_engine, serial, serial_out);
  run_sequence(c, fanout_engine, fanout, fanout_out);
  expect_sequences_equal(serial_out, fanout_out, GetParam(), "root_jobs");
}

TEST_P(CarryParityTest, ContextBumpInvalidatesExactly) {
  // The controller contract: when the bound set mutates (generation bump),
  // memo_context changes and the carried cache must be discarded — the next
  // expansion computes fresh values identical to a never-carried engine, and
  // tallies the invalidation.
  const CarryCase c = make_case(GetParam());
  ExpansionEngine carried(c.pomdp);
  std::vector<std::vector<ActionValue>> warmup;
  run_sequence(c, carried, carry_options(c, true, /*context=*/1), warmup);

  ExpansionNodeStats stats;
  ExpansionOptions bumped = carry_options(c, true, /*context=*/2);
  bumped.stats = &stats;
  std::vector<ActionValue> after_bump;
  carried.action_values(c.roots[0].probabilities(), c.depth, SpanLeaf::of(c.leaf),
                        bumped, after_bump);
  EXPECT_GE(stats.memo_carry_invalidations, 1u) << "seed=" << GetParam();
  // No stale hit survived: a fresh engine that never carried agrees bitwise.
  ExpansionEngine fresh(c.pomdp);
  std::vector<ActionValue> reference;
  fresh.action_values(c.roots[0].probabilities(), c.depth, SpanLeaf::of(c.leaf),
                      carry_options(c, false), reference);
  ASSERT_EQ(after_bump.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(after_bump[i].action, reference[i].action);
    EXPECT_EQ(after_bump[i].value, reference[i].value)
        << "seed=" << GetParam() << " action=" << i;
  }
}

// 120 seeds x the tests above, with the decide sequence, depth, beta, mask
// and floor all derived from the seed; every comparison EXPECT_EQ (bitwise).
INSTANTIATE_TEST_SUITE_P(Seeds, CarryParityTest,
                         ::testing::Range<std::uint64_t>(1, 121));

// A model engineered to collide (uniform state-independent observations):
// repeated decides over the same belief make carried entries unmissable.
Pomdp make_colliding_pomdp() {
  constexpr std::size_t kStates = 4;
  constexpr std::size_t kObs = 3;
  PomdpBuilder b;
  for (StateId s = 0; s < kStates; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -1.0 * static_cast<double>(s));
  }
  b.mark_goal(0);
  b.add_action("repair", 2.0);
  b.add_action("swap", 5.0);
  for (ObsId o = 0; o < kObs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < kStates; ++s) {
    b.set_transition(s, 0, s > 0 ? s - 1 : 0, 1.0);
    b.set_transition(s, 1, (s + 1) % kStates, 0.5);
    b.set_transition(s, 1, s, 0.5);
    for (ActionId a = 0; a < 2; ++a) {
      for (ObsId o = 0; o < kObs; ++o) {
        b.set_observation(s, a, o, 1.0 / static_cast<double>(kObs));
      }
    }
  }
  return b.build();
}

struct QuadraticLeaf {
  double operator()(std::span<const double> pi) const {
    double v = 0.0;
    for (double x : pi) v -= x * x;
    return v;
  }
};

TEST(CarryMetricsTest, RepeatDecideHitsCarriedEntriesAndTalliesThem) {
  const Pomdp p = make_colliding_pomdp();
  ExpansionEngine engine(p);
  const QuadraticLeaf leaf;
  const Belief pi = Belief::uniform(p.num_states());

  obs::Counter& carry_hits = obs::metrics().counter("expansion.memo.carry_hits");
  const std::uint64_t global_before = carry_hits.value();

  ExpansionOptions opts;
  opts.memo = true;
  opts.memo_carry = true;
  opts.memo_context = 1;
  ExpansionNodeStats stats;
  opts.stats = &stats;

  const double first = engine.value(pi.probabilities(), 3, SpanLeaf::of(leaf), opts);
  EXPECT_EQ(stats.memo_carry_hits, 0u);  // nothing carried yet on a fresh engine

  const double second = engine.value(pi.probabilities(), 3, SpanLeaf::of(leaf), opts);
  EXPECT_EQ(first, second);
  // The second decide re-walks a tree whose subtrees were all inserted by
  // the first one: its probes hit entries carried across the call.
  EXPECT_GT(stats.memo_carry_hits, 0u);
  EXPECT_GT(carry_hits.value(), global_before);
}

TEST(CarryMetricsTest, ContextChangeTalliesOneInvalidation) {
  const Pomdp p = make_colliding_pomdp();
  ExpansionEngine engine(p);
  const QuadraticLeaf leaf;
  const Belief pi = Belief::uniform(p.num_states());

  obs::Counter& invalidations =
      obs::metrics().counter("expansion.memo.carry_invalidations");
  const std::uint64_t global_before = invalidations.value();

  ExpansionOptions opts;
  opts.memo = true;
  opts.memo_carry = true;
  opts.memo_context = 7;
  (void)engine.value(pi.probabilities(), 2, SpanLeaf::of(leaf), opts);

  ExpansionNodeStats stats;
  opts.memo_context = 8;  // the bound set mutated
  opts.stats = &stats;
  (void)engine.value(pi.probabilities(), 2, SpanLeaf::of(leaf), opts);
  EXPECT_GE(stats.memo_carry_invalidations, 1u);
  EXPECT_GT(invalidations.value(), global_before);
  EXPECT_EQ(stats.memo_carry_hits, 0u);  // nothing stale survived the bump
}

TEST(CarryMetricsTest, CarryOffNeverTouchesCarryCounters) {
  const Pomdp p = make_colliding_pomdp();
  ExpansionEngine engine(p);
  const QuadraticLeaf leaf;
  const Belief pi = Belief::uniform(p.num_states());

  ExpansionOptions opts;
  opts.memo = true;
  ExpansionNodeStats stats;
  opts.stats = &stats;
  (void)engine.value(pi.probabilities(), 3, SpanLeaf::of(leaf), opts);
  (void)engine.value(pi.probabilities(), 3, SpanLeaf::of(leaf), opts);
  EXPECT_EQ(stats.memo_carry_hits, 0u);
  EXPECT_EQ(stats.memo_carry_misses, 0u);
  EXPECT_EQ(stats.memo_carry_invalidations, 0u);
}

}  // namespace
}  // namespace recoverd
