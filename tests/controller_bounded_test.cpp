#include "controller/bounded_controller.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/heuristic_controller.hpp"
#include "models/two_server.hpp"
#include "util/check.hpp"

namespace recoverd::controller {
namespace {

TEST(BoundedController, PicksCorrectRestartAtPointBelief) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(p);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  BoundedController c(p, set);
  c.begin_episode(Belief::point(p.num_states(), ids.fault_a));
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids.restart_a);
}

TEST(BoundedController, TerminatesOnceRecovered) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(p);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  BoundedController c(p, set);
  c.begin_episode(Belief::point(p.num_states(), ids.null_state));
  const Decision d = c.decide();
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.action, p.terminate_action());
}

TEST(BoundedController, DoesNotTerminateWhileFaultIsLikely) {
  // t_op = 6h makes early termination hugely expensive; with half the mass
  // on faults, aT must lose to any recovery action.
  const Pomdp p = models::make_two_server_without_notification(21600.0);
  const auto ids = models::two_server_ids(p);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  BoundedController c(p, set);
  c.begin_episode(Belief::uniform_over(p.num_states(),
                                       std::vector<StateId>{ids.fault_a, ids.fault_b}));
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
}

TEST(BoundedController, NotificationVariantStopsAtGoalCertainty) {
  models::TwoServerParams params;
  params.coverage = 1.0;
  params.false_positive = 0.0;
  const Pomdp p = models::make_two_server_with_notification(params);
  const auto ids = models::two_server_ids(p);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  BoundedController c(p, set);
  c.begin_episode(Belief::point(p.num_states(), ids.fault_a));
  EXPECT_FALSE(c.decide().terminate);
  // Perfect monitors: a clear reading after the restart collapses the
  // belief onto Null, and the controller stops.
  c.record(ids.restart_a, ids.clear);
  EXPECT_TRUE(c.decide().terminate);
}

TEST(BoundedController, OnlineImprovementGrowsTheSharedSet) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(p);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  BoundedControllerOptions opts;
  opts.online_improvement = true;
  BoundedController c(p, set, opts);
  c.begin_episode(Belief::point(p.num_states(), ids.fault_a));
  const std::size_t before = set.size();
  (void)c.decide();
  EXPECT_GE(set.size(), before);  // improvement may add a plane
  EXPECT_LE(set.size(), before + 1);

  BoundedControllerOptions off;
  off.online_improvement = false;
  bounds::BoundSet frozen = bounds::make_ra_bound_set(p.mdp());
  BoundedController c2(p, frozen, off);
  c2.begin_episode(Belief::point(p.num_states(), ids.fault_a));
  (void)c2.decide();
  EXPECT_EQ(frozen.size(), 1u);  // untouched
}

TEST(BoundedController, Validation) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  BoundedControllerOptions opts;
  opts.tree_depth = 0;
  EXPECT_THROW(BoundedController(p, set, opts), PreconditionError);
  bounds::BoundSet empty(p.num_states());
  EXPECT_THROW(BoundedController(p, empty), PreconditionError);
}

TEST(HeuristicController, MatchesPaperLeafSemantics) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  HeuristicController c(p);
  c.begin_episode(Belief::point(p.num_states(), ids.fault_a));
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids.restart_a);
}

TEST(HeuristicController, TerminatesOnlyAtThreshold) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  HeuristicControllerOptions opts;
  opts.termination_probability = 0.9999;
  HeuristicController c(p, opts);

  // 0.999 certain is still below the threshold: keep going.
  std::vector<double> nearly(p.num_states(), 0.0);
  nearly[ids.null_state] = 0.999;
  nearly[ids.fault_a] = 0.001;
  c.begin_episode(Belief(nearly));
  EXPECT_FALSE(c.decide().terminate);

  std::vector<double> sure(p.num_states(), 0.0);
  sure[ids.null_state] = 0.99995;
  sure[ids.fault_a] = 0.00005;
  c.begin_episode(Belief(sure));
  EXPECT_TRUE(c.decide().terminate);
}

TEST(HeuristicController, MasksTerminateActionOnTransformedModels) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(p);
  HeuristicController c(p);
  c.begin_episode(Belief::uniform_over(p.num_states(),
                                       std::vector<StateId>{ids.fault_a, ids.fault_b}));
  for (int i = 0; i < 5; ++i) {
    const Decision d = c.decide();
    if (d.terminate) break;
    ASSERT_NE(d.action, p.terminate_action());
    c.record(d.action, ids.clear);
  }
}

TEST(HeuristicController, DeeperTreesAreAllowed) {
  const Pomdp p = models::make_two_server();
  for (int depth : {1, 2, 3}) {
    HeuristicControllerOptions opts;
    opts.tree_depth = depth;
    HeuristicController c(p, opts);
    c.begin_episode(Belief::uniform(p.num_states()));
    EXPECT_NO_THROW(c.decide());
    EXPECT_EQ(c.name(), "Heuristic(d=" + std::to_string(depth) + ")");
  }
}

TEST(Bootstrap, BoundImprovesMonotonicallyBothVariants) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(p);
  const Belief reference = Belief::uniform(p.num_states());

  for (const BootstrapVariant variant :
       {BootstrapVariant::Random, BootstrapVariant::Average}) {
    bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
    BootstrapOptions opts;
    opts.variant = variant;
    opts.iterations = 10;
    opts.observe_action = ids.observe;
    opts.seed = 11;
    const BootstrapTrace trace = bootstrap_bounds(p, set, reference, opts);
    ASSERT_EQ(trace.bound_at_reference.size(), 10u);
    for (std::size_t i = 1; i < trace.bound_at_reference.size(); ++i) {
      EXPECT_GE(trace.bound_at_reference[i] + 1e-12, trace.bound_at_reference[i - 1]);
      EXPECT_LE(trace.set_sizes[i], trace.set_sizes[i - 1] + opts.max_episode_steps);
    }
    // The bound must actually move off the raw RA plane.
    const bounds::BoundSet fresh = bounds::make_ra_bound_set(p.mdp());
    EXPECT_GT(trace.bound_at_reference.back(),
              fresh.evaluate(reference.probabilities()));
  }
}

TEST(Bootstrap, Validation) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  bounds::BoundSet set = bounds::make_ra_bound_set(p.mdp());
  const Belief reference = Belief::uniform(p.num_states());
  BootstrapOptions opts;  // observe_action unset
  EXPECT_THROW(bootstrap_bounds(p, set, reference, opts), PreconditionError);
}

}  // namespace
}  // namespace recoverd::controller
