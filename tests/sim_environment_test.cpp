#include "sim/environment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/two_server.hpp"
#include "sim/fault_injector.hpp"
#include "util/check.hpp"

namespace recoverd::sim {
namespace {

TEST(Environment, ResetInitializesClocksAndState) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  Environment env(p, Rng(1));
  env.reset(ids.fault_a);
  EXPECT_EQ(env.true_state(), ids.fault_a);
  EXPECT_DOUBLE_EQ(env.elapsed_time(), 0.0);
  EXPECT_DOUBLE_EQ(env.accumulated_cost(), 0.0);
  EXPECT_FALSE(env.recovered());
  EXPECT_TRUE(std::isinf(env.recovery_entered_time()));

  env.reset(ids.null_state);
  EXPECT_TRUE(env.recovered());
  EXPECT_DOUBLE_EQ(env.recovery_entered_time(), 0.0);
}

TEST(Environment, StepAccruesCostAndTime) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  Environment env(p, Rng(2));
  env.reset(ids.fault_a);

  const auto step = env.step(ids.observe);
  EXPECT_EQ(step.next_state, ids.fault_a);  // observe is identity
  EXPECT_DOUBLE_EQ(step.reward, -0.5);
  EXPECT_DOUBLE_EQ(step.duration, 1.0);
  EXPECT_DOUBLE_EQ(env.elapsed_time(), 1.0);
  EXPECT_DOUBLE_EQ(env.accumulated_cost(), 0.5);
  EXPECT_EQ(env.steps(), 1u);
}

TEST(Environment, RecoveryTimeRecordedOnGoalEntry) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  Environment env(p, Rng(3));
  env.reset(ids.fault_b);
  env.step(ids.observe);                        // t=1, fault persists
  const auto fix = env.step(ids.restart_b);     // t=2, deterministic fix
  EXPECT_EQ(fix.next_state, ids.null_state);
  EXPECT_TRUE(env.recovered());
  EXPECT_DOUBLE_EQ(env.recovery_entered_time(), 2.0);
  env.step(ids.observe);  // more time passes; residual stays fixed
  EXPECT_DOUBLE_EQ(env.recovery_entered_time(), 2.0);
  EXPECT_DOUBLE_EQ(env.elapsed_time(), 3.0);
}

TEST(Environment, ObservationsFollowMonitorModel) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  Environment env(p, Rng(4));
  env.reset(ids.fault_a);
  int alarms = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto step = env.step(ids.observe);
    if (step.obs == ids.alarm_a) ++alarms;
  }
  EXPECT_NEAR(alarms / static_cast<double>(n), 0.9, 0.02);  // coverage 0.9
}

TEST(Environment, RejectsBadInputs) {
  const Pomdp p = models::make_two_server();
  Environment env(p, Rng(5));
  EXPECT_THROW(env.reset(99), PreconditionError);
  env.reset(0);
  EXPECT_THROW(env.step(99), PreconditionError);
}

TEST(FaultInjector, UniformCoversAllFaults) {
  const std::vector<StateId> faults{1, 2};
  FaultInjector injector(faults);
  Rng rng(6);
  int first = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const StateId s = injector.sample(rng);
    ASSERT_TRUE(s == 1 || s == 2);
    if (s == 1) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(n), 0.5, 0.02);
}

TEST(FaultInjector, WeightedSampling) {
  const std::vector<StateId> faults{3, 7};
  const std::vector<double> weights{1.0, 3.0};
  FaultInjector injector(faults, weights);
  Rng rng(7);
  int heavy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (injector.sample(rng) == 7) ++heavy;
  }
  EXPECT_NEAR(heavy / static_cast<double>(n), 0.75, 0.02);
}

TEST(FaultInjector, Validation) {
  EXPECT_THROW(FaultInjector(std::vector<StateId>{}), PreconditionError);
  const std::vector<StateId> faults{1};
  const std::vector<double> bad_weights{1.0, 2.0};
  EXPECT_THROW(FaultInjector(faults, bad_weights), PreconditionError);
}

}  // namespace
}  // namespace recoverd::sim
