// Exactness suite for the within-decision transposition cache (DESIGN.md
// §11): on randomized recovery POMDPs, every engine entry point with the
// memo enabled must reproduce the memo-off walk BIT FOR BIT — same values,
// same chosen actions, same tie-breaks — across depths 1..3, action masks,
// branch floors and root_jobs fan-outs. The suite also pins the cache's
// observable behaviour: hit/miss/insertion tallies on a model built to
// collide, the size cap, and the leaf cost-hint gate.
#include "pomdp/expansion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "pomdp/belief.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

// Random but valid recovery POMDP (same shape as the expansion parity
// suite): state 0 is the goal, action 0 always repairs downward, and the
// observation rows mix large and tiny entries so branch floors prune some
// branches but not all.
Pomdp make_random_pomdp(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_states = 3 + rng.uniform_index(5);   // 3..7
  const std::size_t num_actions = 2 + rng.uniform_index(3);  // 2..4
  const std::size_t num_obs = 2 + rng.uniform_index(4);      // 2..5

  PomdpBuilder b;
  for (StateId s = 0; s < num_states; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -rng.uniform(0.05, 1.0));
  }
  b.mark_goal(0);
  for (ActionId a = 0; a < num_actions; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    b.add_action(name, rng.uniform(0.5, 10.0));
  }
  for (ObsId o = 0; o < num_obs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<StateId> targets;
      if (s > 0 && a == 0) targets.push_back(rng.uniform_index(s));
      targets.push_back(rng.uniform_index(num_states));
      if (rng.bernoulli(0.5)) targets.push_back(rng.uniform_index(num_states));
      std::vector<double> row(num_states, 0.0);
      double total = 0.0;
      std::vector<double> weights(targets.size());
      for (auto& w : weights) {
        w = rng.uniform(0.1, 1.0);
        total += w;
      }
      for (std::size_t i = 0; i < targets.size(); ++i) row[targets[i]] += weights[i] / total;
      for (StateId t = 0; t < num_states; ++t) {
        if (row[t] > 0.0) b.set_transition(s, a, t, row[t]);
      }
      if (rng.bernoulli(0.3)) b.set_impulse_reward(s, a, -rng.uniform(0.0, 2.0));
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<double> row(num_obs);
      double total = 0.0;
      for (auto& v : row) {
        v = rng.bernoulli(0.4) ? rng.uniform(0.5, 1.0) : rng.uniform(0.001, 0.05);
        total += v;
      }
      for (ObsId o = 0; o < num_obs; ++o) b.set_observation(s, a, o, row[o] / total);
    }
  }
  return b.build();
}

// Piecewise-linear leaf (max over random hyperplanes), shaped like the
// BoundSet evaluations the controllers use. Expensive enough (default cost
// hint) that the engine memoizes depth-0 results.
struct SawLeaf {
  std::vector<std::vector<double>> planes;

  static SawLeaf random(std::size_t num_states, Rng& rng) {
    SawLeaf leaf;
    const std::size_t n = 1 + rng.uniform_index(3);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> w(num_states);
      for (auto& v : w) v = -rng.uniform(0.0, 50.0);
      leaf.planes.push_back(std::move(w));
    }
    return leaf;
  }

  double operator()(std::span<const double> pi) const {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& w : planes) best = std::max(best, linalg::dot(w, pi));
    return best;
  }
};

struct MemoCase {
  Pomdp pomdp;
  Belief belief;
  SawLeaf leaf;
  int depth;
  double beta;
  ActionId skip;
  double floor;
};

MemoCase make_case(std::uint64_t seed) {
  MemoCase c{make_random_pomdp(seed), Belief::uniform(1), {}, 1, 1.0, kInvalidId, 0.0};
  Rng rng(seed ^ 0x3a5c0ffe);
  std::vector<double> pi(c.pomdp.num_states());
  for (auto& v : pi) v = rng.uniform(0.01, 1.0);
  c.belief = Belief(std::move(pi));  // Belief normalises
  c.leaf = SawLeaf::random(c.pomdp.num_states(), rng);
  c.depth = 1 + static_cast<int>(rng.uniform_index(3));  // 1..3
  c.beta = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.5, 1.0);
  c.skip = rng.bernoulli(0.3) ? ActionId{0} : kInvalidId;
  const double floors[] = {0.0, 1e-3, 5e-2, 0.2};
  c.floor = floors[rng.uniform_index(4)];
  return c;
}

ExpansionOptions base_options(const MemoCase& c, bool memo) {
  ExpansionOptions opts;
  opts.beta = c.beta;
  opts.skip_action = c.skip;
  opts.branch_floor = c.floor;
  opts.memo = memo;
  return opts;
}

class MemoParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoParityTest, ValueMatchesMemoOffBitwise) {
  const MemoCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const double off = engine.value(c.belief.probabilities(), c.depth,
                                  SpanLeaf::of(c.leaf), base_options(c, false));
  const double on = engine.value(c.belief.probabilities(), c.depth,
                                 SpanLeaf::of(c.leaf), base_options(c, true));
  EXPECT_EQ(off, on) << "seed=" << GetParam() << " depth=" << c.depth
                     << " floor=" << c.floor << " beta=" << c.beta;
}

TEST_P(MemoParityTest, ActionValuesAndBestActionMatchMemoOffBitwise) {
  const MemoCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  std::vector<ActionValue> off;
  std::vector<ActionValue> on;
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf),
                       base_options(c, false), off);
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf),
                       base_options(c, true), on);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].action, on[i].action);
    EXPECT_EQ(off[i].value, on[i].value)
        << "seed=" << GetParam() << " action=" << i << " depth=" << c.depth;
  }

  const ActionValue best_off = engine.best_action(c.belief.probabilities(), c.depth,
                                                  SpanLeaf::of(c.leaf), base_options(c, false));
  const ActionValue best_on = engine.best_action(c.belief.probabilities(), c.depth,
                                                 SpanLeaf::of(c.leaf), base_options(c, true));
  EXPECT_EQ(best_off.action, best_on.action);
  EXPECT_EQ(best_off.value, best_on.value);
}

TEST_P(MemoParityTest, RootJobsInvariantWithMemoOn) {
  const MemoCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  ExpansionOptions serial = base_options(c, true);
  ExpansionOptions fanout = serial;
  fanout.root_jobs = 3;

  std::vector<ActionValue> serial_values;
  std::vector<ActionValue> parallel_values;
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), serial,
                       serial_values);
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), fanout,
                       parallel_values);
  ASSERT_EQ(serial_values.size(), parallel_values.size());
  for (std::size_t i = 0; i < serial_values.size(); ++i) {
    EXPECT_EQ(serial_values[i].action, parallel_values[i].action);
    EXPECT_EQ(serial_values[i].value, parallel_values[i].value) << "action " << i;
  }
}

TEST_P(MemoParityTest, TinySizeCapStillExactBitwise) {
  const MemoCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  ExpansionOptions capped = base_options(c, true);
  capped.memo_max_bytes = 1;  // forces every insertion onto the capped path
  const double off = engine.value(c.belief.probabilities(), c.depth,
                                  SpanLeaf::of(c.leaf), base_options(c, false));
  const double got = engine.value(c.belief.probabilities(), c.depth,
                                  SpanLeaf::of(c.leaf), capped);
  EXPECT_EQ(off, got) << "seed=" << GetParam();
}

// 120 seeds x the 4 tests above, with depth / beta / mask / floor all
// derived from the seed — comfortably past the "100 randomized models"
// acceptance bar, every comparison EXPECT_EQ (bitwise).
INSTANTIATE_TEST_SUITE_P(Seeds, MemoParityTest,
                         ::testing::Range<std::uint64_t>(1, 121));

// A model engineered to collide: the observation distribution is uniform
// and independent of the state, so every observation branch of a node
// produces the *same* posterior bit pattern and all but the first child of
// each (node, action) must hit the cache.
Pomdp make_colliding_pomdp() {
  constexpr std::size_t kStates = 4;
  constexpr std::size_t kObs = 3;
  PomdpBuilder b;
  for (StateId s = 0; s < kStates; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -1.0 * static_cast<double>(s));
  }
  b.mark_goal(0);
  b.add_action("repair", 2.0);
  b.add_action("swap", 5.0);
  for (ObsId o = 0; o < kObs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < kStates; ++s) {
    b.set_transition(s, 0, s > 0 ? s - 1 : 0, 1.0);
    b.set_transition(s, 1, (s + 1) % kStates, 0.5);
    b.set_transition(s, 1, s, 0.5);
    for (ActionId a = 0; a < 2; ++a) {
      for (ObsId o = 0; o < kObs; ++o) {
        b.set_observation(s, a, o, 1.0 / static_cast<double>(kObs));
      }
    }
  }
  return b.build();
}

struct QuadraticLeaf {
  double operator()(std::span<const double> pi) const {
    double v = 0.0;
    for (double x : pi) v -= x * x;
    return v;
  }
};

TEST(MemoMetricsTest, CollidingModelRecordsHitsMissesInsertions) {
  const Pomdp p = make_colliding_pomdp();
  ExpansionEngine engine(p);
  const QuadraticLeaf leaf;
  const Belief pi = Belief::uniform(p.num_states());

  obs::Counter& hits = obs::metrics().counter("pomdp.memo.hits");
  obs::Counter& misses = obs::metrics().counter("pomdp.memo.misses");
  obs::Counter& insertions = obs::metrics().counter("pomdp.memo.insertions");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();
  const std::uint64_t insertions0 = insertions.value();

  ExpansionOptions opts;
  opts.memo = true;
  const double v = engine.value(pi.probabilities(), 3, SpanLeaf::of(leaf), opts);
  EXPECT_TRUE(std::isfinite(v));

  const std::uint64_t hit_delta = hits.value() - hits0;
  const std::uint64_t miss_delta = misses.value() - misses0;
  const std::uint64_t insert_delta = insertions.value() - insertions0;
  // With 3 identical observation branches per (node, action), every
  // *interior* probe after the first per (node, action) must hit. (The
  // identical depth-0 children of one frontier all miss together: the batch
  // path probes the whole frontier before inserting its misses.) Every miss
  // is inserted — nothing capped here.
  EXPECT_GT(hit_delta, 0u);
  EXPECT_GT(miss_delta, 0u);
  EXPECT_EQ(insert_delta, miss_delta);
  // Both root actions see 2 hits among the root's 3 children and 4 hits one
  // level down: at least 12 in total on this fixed model.
  EXPECT_GE(hit_delta, 12u);

  // Memo-off runs the same tree without touching the cache tallies.
  const std::uint64_t hits_after = hits.value();
  const std::uint64_t misses_after = misses.value();
  ExpansionOptions off = opts;
  off.memo = false;
  const double v_off = engine.value(pi.probabilities(), 3, SpanLeaf::of(leaf), off);
  EXPECT_EQ(v, v_off);
  EXPECT_EQ(hits.value(), hits_after);
  EXPECT_EQ(misses.value(), misses_after);
}

TEST(MemoMetricsTest, TinyCapRecordsCappedInsertions) {
  const Pomdp p = make_colliding_pomdp();
  ExpansionEngine engine(p);
  const QuadraticLeaf leaf;
  const Belief pi = Belief::uniform(p.num_states());

  obs::Counter& capped = obs::metrics().counter("pomdp.memo.capped");
  const std::uint64_t capped0 = capped.value();
  ExpansionOptions opts;
  opts.memo = true;
  opts.memo_max_bytes = 1;
  (void)engine.value(pi.probabilities(), 2, SpanLeaf::of(leaf), opts);
  EXPECT_GT(capped.value(), capped0);
}

TEST(MemoMetricsTest, CheapLeafCostHintSkipsDepthZeroCaching) {
  const Pomdp p = make_colliding_pomdp();
  const QuadraticLeaf leaf;
  const Belief pi = Belief::uniform(p.num_states());

  const SpanLeaf::Fn call = [](const void* ctx, std::span<const double> span_pi,
                               std::size_t) {
    return (*static_cast<const QuadraticLeaf*>(ctx))(span_pi);
  };
  const SpanLeaf cheap_leaf(call, &leaf, nullptr, /*cost_hint=*/1);
  const SpanLeaf costly_leaf(call, &leaf, nullptr, /*cost_hint=*/16);

  obs::Counter& insertions = obs::metrics().counter("pomdp.memo.insertions");
  ExpansionOptions opts;
  opts.memo = true;

  // Depth 1: every child is a leaf. A cheap evaluator (cost hint at or
  // below the cache's own probe+insert cost) must bypass the cache
  // entirely; the same evaluator with a costly hint populates it. Values
  // are identical either way — the hint only gates caching, never results.
  ExpansionEngine cheap_engine(p);
  const std::uint64_t before_cheap = insertions.value();
  const double cheap = cheap_engine.value(pi.probabilities(), 1, cheap_leaf, opts);
  EXPECT_EQ(insertions.value(), before_cheap);

  ExpansionEngine costly_engine(p);
  const std::uint64_t before_costly = insertions.value();
  const double costly = costly_engine.value(pi.probabilities(), 1, costly_leaf, opts);
  EXPECT_GT(insertions.value(), before_costly);
  EXPECT_EQ(cheap, costly);
}

}  // namespace
}  // namespace recoverd
