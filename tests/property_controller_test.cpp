// Parameterized end-to-end property suite: every controller on every model
// must terminate and recover, and the bounded controller must respect the
// cost ordering against the oracle.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "controller/oracle_controller.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "sim/experiment.hpp"

namespace recoverd::sim {
namespace {

// One environment + transformed-model pair with its observe action and
// injectable faults.
struct Scenario {
  std::string name;
  std::function<Pomdp()> make_base;
  std::function<Pomdp()> make_recovery;  // terminate-transformed
  std::size_t episodes;
};

std::vector<Scenario> scenarios() {
  return {
      {"two_server",
       [] { return models::make_two_server(); },
       [] { return models::make_two_server_without_notification(3600.0); },
       150},
      {"two_server_noisy",
       [] {
         models::TwoServerParams p;
         p.coverage = 0.75;
         p.false_positive = 0.1;
         return models::make_two_server(p);
       },
       [] {
         models::TwoServerParams p;
         p.coverage = 0.75;
         p.false_positive = 0.1;
         return models::make_two_server_without_notification(3600.0, p);
       },
       100},
      {"emn",
       [] { return models::make_emn_base(); },
       [] { return models::make_emn_recovery_model(); },
       40},
  };
}

class ControllerPropertyTest : public ::testing::TestWithParam<Scenario> {
 protected:
  ControllerPropertyTest()
      : base_(GetParam().make_base()), recovery_(GetParam().make_recovery()) {
    observe_ = base_.mdp().find_action("Observe");
    config_.observe_action = observe_;
    config_.max_steps = 5000;
    for (StateId s = 0; s < base_.num_states(); ++s) {
      if (!base_.mdp().is_goal(s)) faults_.push_back(s);
    }
  }

  Pomdp base_;
  Pomdp recovery_;
  ActionId observe_ = kInvalidId;
  EpisodeConfig config_;
  std::vector<StateId> faults_;
};

TEST_P(ControllerPropertyTest, BoundedControllerTerminatesAndRecovers) {
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery_.mdp());
  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController c(recovery_, set, opts);
  const FaultInjector injector(faults_);
  const auto result =
      run_experiment(base_, c, injector, GetParam().episodes, 97, config_);
  EXPECT_EQ(result.not_terminated, 0u);
  EXPECT_EQ(result.unrecovered, 0u);
}

TEST_P(ControllerPropertyTest, HeuristicControllerTerminatesAndRecovers) {
  controller::HeuristicControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::HeuristicController c(base_, opts);
  const FaultInjector injector(faults_);
  const auto result =
      run_experiment(base_, c, injector, GetParam().episodes, 31, config_);
  EXPECT_EQ(result.not_terminated, 0u);
  EXPECT_EQ(result.unrecovered, 0u);
}

TEST_P(ControllerPropertyTest, MostLikelyControllerTerminatesAndRecovers) {
  controller::MostLikelyControllerOptions opts;
  opts.observe_action = observe_;
  controller::MostLikelyController c(base_, opts);
  const FaultInjector injector(faults_);
  const auto result =
      run_experiment(base_, c, injector, GetParam().episodes, 13, config_);
  EXPECT_EQ(result.not_terminated, 0u);
  EXPECT_EQ(result.unrecovered, 0u);
}

TEST_P(ControllerPropertyTest, BoundedNotMuchWorseThanItsBoundPredicts) {
  // The §4.2 performance statement, empirically: the controller's mean
  // accumulated (negative) cost must not fall below the lower bound at the
  // starting belief by more than sampling noise. (The bound is on expected
  // reward under the controller's own decisions.)
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery_.mdp());
  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController c(recovery_, set, opts);
  const FaultInjector injector(faults_);
  const auto result =
      run_experiment(base_, c, injector, GetParam().episodes, 7, config_);
  const Belief start = Belief::uniform_over(recovery_.num_states(), faults_);
  // Bound after the run (improved online): still a valid lower bound on V*.
  const double lower = set.evaluate(start.probabilities());
  EXPECT_GE(-result.cost.mean(),
            lower - 5.0 * result.cost.ci95_halfwidth() - 1e-6);
}

TEST_P(ControllerPropertyTest, OracleDominatesBoundedOnCost) {
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery_.mdp());
  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController bounded(recovery_, set, opts);
  const FaultInjector injector(faults_);
  const auto bounded_result =
      run_experiment(base_, bounded, injector, GetParam().episodes, 11, config_);

  RunningStats oracle_cost;
  Rng rng(11);
  EpisodeConfig oracle_config = config_;
  oracle_config.initial_observation = false;
  for (std::size_t i = 0; i < GetParam().episodes; ++i) {
    Rng episode_rng = rng.split();
    Environment env(base_, episode_rng.split());
    controller::OracleController oracle(base_, [&env] { return env.true_state(); });
    const auto m = run_episode(env, oracle, injector.sample(episode_rng), oracle_config);
    ASSERT_TRUE(m.recovered);
    oracle_cost.add(m.cost);
  }
  EXPECT_LE(oracle_cost.mean(),
            bounded_result.cost.mean() + bounded_result.cost.ci95_halfwidth() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ControllerPropertyTest,
                         ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace recoverd::sim
