#include "linalg/gauss_seidel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/power_iteration.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::linalg {
namespace {

// Builds a random substochastic matrix whose rows leak at least `leak`
// probability mass, guaranteeing a transient chain (spectral radius < 1).
SparseMatrix random_substochastic(std::size_t n, double leak, Rng& rng) {
  SparseMatrixBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> w(n);
    double total = 0.0;
    for (auto& v : w) {
      v = rng.bernoulli(0.3) ? rng.uniform01() : 0.0;
      total += v;
    }
    if (total == 0.0) continue;  // row of zeros is fine (fully leaking)
    const double scale = (1.0 - leak) / total;
    for (std::size_t j = 0; j < n; ++j) {
      if (w[j] > 0.0) b.add(i, j, w[j] * scale);
    }
  }
  return b.build();
}

DenseMatrix to_dense(const SparseMatrix& m) {
  DenseMatrix d(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (const auto& e : m.row(i)) d.at(i, e.col) = e.value;
  }
  return d;
}

TEST(GaussSeidel, SolvesSmallSystemExactly) {
  // x = c + Qx with Q = [[0, .5], [.25, 0]] and c = [1, 2]:
  // x0 = 1 + .5 x1; x1 = 2 + .25 x0  =>  x0 = 16/7, x1 = 18/7.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 0.5);
  b.add(1, 0, 0.25);
  const std::vector<double> c{1.0, 2.0};
  const auto result = solve_fixed_point(b.build(), c);
  ASSERT_TRUE(result.converged());
  EXPECT_NEAR(result.x[0], 16.0 / 7.0, 1e-8);
  EXPECT_NEAR(result.x[1], 18.0 / 7.0, 1e-8);
}

TEST(GaussSeidel, MatchesDenseLuOnRandomSystems) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 15;
    const SparseMatrix q = random_substochastic(n, 0.1, rng);
    std::vector<double> c(n);
    for (auto& v : c) v = rng.uniform(-5.0, 0.0);

    const auto iterative = solve_fixed_point(q, c);
    ASSERT_TRUE(iterative.converged());

    const DenseMatrix a = DenseMatrix::identity(n).subtract(to_dense(q));
    const LuFactorization lu(a);
    const auto direct = lu.solve(c);
    EXPECT_TRUE(approx_equal(iterative.x, direct, 1e-6)) << "trial " << trial;
  }
}

TEST(GaussSeidel, JacobiAgreesWithGaussSeidel) {
  Rng rng(321);
  const std::size_t n = 12;
  const SparseMatrix q = random_substochastic(n, 0.2, rng);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.uniform(-1.0, 1.0);
  const auto gs = solve_fixed_point(q, c);
  const auto jac = solve_fixed_point_jacobi(q, c);
  ASSERT_TRUE(gs.converged());
  ASSERT_TRUE(jac.converged());
  EXPECT_TRUE(approx_equal(gs.x, jac.x, 1e-6));
}

TEST(GaussSeidel, OverRelaxationConvergesToSameSolution) {
  Rng rng(555);
  const std::size_t n = 25;
  const SparseMatrix q = random_substochastic(n, 0.05, rng);
  std::vector<double> c(n, -1.0);
  const auto plain = solve_fixed_point(q, c);
  GaussSeidelOptions sor;
  sor.relaxation = 1.2;
  const auto relaxed = solve_fixed_point(q, c, sor);
  ASSERT_TRUE(plain.converged());
  ASSERT_TRUE(relaxed.converged());
  EXPECT_TRUE(approx_equal(plain.x, relaxed.x, 1e-6));
}

TEST(GaussSeidel, AbsorbingZeroRewardRowStaysZero) {
  // State 1 is absorbing (self loop prob 1) with zero source: its value must
  // be pinned at 0, and state 0 must get c0 + 0.9 * 0 = c0.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 0.9);
  b.add(1, 1, 1.0);
  const std::vector<double> c{-2.0, 0.0};
  const auto result = solve_fixed_point(b.build(), c);
  ASSERT_TRUE(result.converged());
  EXPECT_NEAR(result.x[1], 0.0, 1e-12);
  EXPECT_NEAR(result.x[0], -2.0, 1e-9);
}

TEST(GaussSeidel, AbsorbingRowWithNonzeroSourceIsDivergent) {
  // x = -1 + x has no finite solution; the solver must say so immediately.
  SparseMatrixBuilder b(1, 1);
  b.add(0, 0, 1.0);
  const std::vector<double> c{-1.0};
  const auto result = solve_fixed_point(b.build(), c);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
}

TEST(GaussSeidel, DetectsDivergenceOnExpandingSystem) {
  // Q with spectral radius > 1 and a forcing term: iteration must blow up
  // and report Diverged rather than spinning forever.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.2);
  b.add(1, 0, 1.2);
  const std::vector<double> c{-1.0, -1.0};
  const auto result = solve_fixed_point(b.build(), c);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
}

TEST(GaussSeidel, ReportsMaxIterationsOnSlowChain) {
  // A recurrent zero-leak cycle with nonzero source drifts linearly: each
  // sweep adds a constant, so it neither converges nor exceeds the
  // divergence threshold within a tiny iteration budget.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const std::vector<double> c{-1.0, -1.0};
  GaussSeidelOptions opts;
  opts.max_iterations = 50;
  const auto result = solve_fixed_point(b.build(), c, opts);
  EXPECT_EQ(result.status, SolveStatus::MaxIterations);
  EXPECT_EQ(result.iterations, 50u);
}

TEST(GaussSeidel, StallWindowFlagsLinearDriftAsDivergence) {
  // The same recurrent cycle drifts by a constant per sweep: the delta never
  // shrinks, so stall detection must classify it as Diverged within the
  // window instead of burning the full iteration budget.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const std::vector<double> c{-1.0, -1.0};
  GaussSeidelOptions opts;
  opts.stall_window = 50;
  const auto result = solve_fixed_point(b.build(), c, opts);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
  EXPECT_LE(result.iterations, 2 * opts.stall_window);
  EXPECT_NE(result.detail.find("stalled"), std::string::npos) << result.detail;
}

TEST(GaussSeidel, StallWindowZeroDisablesDetection) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const std::vector<double> c{-1.0, -1.0};
  GaussSeidelOptions opts;
  opts.stall_window = 0;  // disabled: the budget is the only backstop
  opts.max_iterations = 60;
  const auto result = solve_fixed_point(b.build(), c, opts);
  EXPECT_EQ(result.status, SolveStatus::MaxIterations);
  EXPECT_EQ(result.iterations, 60u);
}

// A long pure dependency chain x_i = c_i + x_{i+1}: at ω = 1.0 the forward
// sweep matrix is nilpotent (converges in ~n sweeps, x_i = -(n-i)), while at
// ω = 1.1 the iterate picks up a C(k,j)·(ω)^j transient that blows past the
// divergence threshold long before the decay sets in — the DESIGN.md §10
// near-DAG failure mode the relaxation fallback exists for.
SparseMatrix long_chain(std::size_t n) {
  SparseMatrixBuilder b(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) b.add(i, i + 1, 1.0);
  return b.build();
}

TEST(GaussSeidelRelaxationFallback, RecoversNonStructuralSorDivergence) {
  constexpr std::size_t n = 400;
  const SparseMatrix q = long_chain(n);
  const std::vector<double> c(n, -1.0);

  GaussSeidelOptions sor;
  sor.relaxation = 1.1;
  sor.relaxation_fallback = false;
  const auto diverged = solve_fixed_point(q, c, sor);
  ASSERT_EQ(diverged.status, SolveStatus::Diverged)
      << "chain no longer diverges at omega=1.1; grow n";

  obs::Counter& fallbacks =
      obs::metrics().counter("linalg.gauss_seidel.relaxation_fallbacks");
  const std::uint64_t before = fallbacks.value();
  sor.relaxation_fallback = true;
  const auto result = solve_fixed_point(q, c, sor);
  ASSERT_TRUE(result.converged()) << result.detail;
  EXPECT_EQ(fallbacks.value(), before + 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.x[i], -static_cast<double>(n - i), 1e-8) << "state " << i;
  }
}

TEST(GaussSeidelRelaxationFallback, SccSolverAlsoFallsBack) {
  // A leaky n-cycle is one nontrivial SCC, so the topology-aware solver
  // runs block Gauss–Seidel on it — the same sweep whose ω = 1.1 transient
  // blows up along the cycle, and the same fallback must recover it.
  constexpr std::size_t n = 400;
  SparseMatrixBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) b.add(i, (i + 1) % n, 0.999);
  const SparseMatrix q = b.build();
  const std::vector<double> c(n, -1.0);

  GaussSeidelOptions sor;
  sor.relaxation = 1.1;
  sor.relaxation_fallback = false;
  const auto diverged = solve_fixed_point_scc(q, c, sor);
  ASSERT_EQ(diverged.status, SolveStatus::Diverged)
      << "cycle no longer diverges at omega=1.1; grow n";

  obs::Counter& fallbacks =
      obs::metrics().counter("linalg.gauss_seidel.relaxation_fallbacks");
  const std::uint64_t before = fallbacks.value();
  sor.relaxation_fallback = true;
  const auto result = solve_fixed_point_scc(q, c, sor);
  ASSERT_TRUE(result.converged()) << result.detail;
  EXPECT_EQ(fallbacks.value(), before + 1);
  const auto plain = solve_fixed_point(q, c);
  ASSERT_TRUE(plain.converged());
  EXPECT_TRUE(approx_equal(result.x, plain.x, 1e-6));
}

TEST(GaussSeidelRelaxationFallback, StructuralDivergenceIsNotRetried) {
  // x = -1 + x has no finite solution at any relaxation factor: the solver
  // must report the divergence untouched and leave the fallback counter
  // alone.
  SparseMatrixBuilder b(1, 1);
  b.add(0, 0, 1.0);
  const std::vector<double> c{-1.0};
  GaussSeidelOptions sor;
  sor.relaxation = 1.1;
  obs::Counter& fallbacks =
      obs::metrics().counter("linalg.gauss_seidel.relaxation_fallbacks");
  const std::uint64_t before = fallbacks.value();
  const auto result = solve_fixed_point(b.build(), c, sor);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
  EXPECT_EQ(fallbacks.value(), before);
}

TEST(GaussSeidelRelaxationFallback, PlainGaussSeidelNeverRetries) {
  // ω = 1.0 has nothing to fall back to: a genuinely divergent system is
  // reported directly.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.2);
  b.add(1, 0, 1.2);
  const std::vector<double> c{-1.0, -1.0};
  obs::Counter& fallbacks =
      obs::metrics().counter("linalg.gauss_seidel.relaxation_fallbacks");
  const std::uint64_t before = fallbacks.value();
  const auto result = solve_fixed_point(b.build(), c);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
  EXPECT_EQ(fallbacks.value(), before);
}

TEST(GaussSeidel, ValidatesOptions) {
  SparseMatrixBuilder b(1, 1);
  const std::vector<double> c{0.0};
  GaussSeidelOptions bad;
  bad.relaxation = 2.5;
  EXPECT_THROW(solve_fixed_point(b.build(), c, bad), PreconditionError);
  bad.relaxation = 1.0;
  bad.tolerance = 0.0;
  EXPECT_THROW(solve_fixed_point(b.build(), c, bad), PreconditionError);
}

TEST(LuFactorization, SolvesAndDetectsSingularity) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const LuFactorization lu(a);
  const auto x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.abs_determinant(), 5.0, 1e-12);

  DenseMatrix singular(2, 2);
  singular.at(0, 0) = 1.0;
  singular.at(0, 1) = 2.0;
  singular.at(1, 0) = 2.0;
  singular.at(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization{singular}, InvariantError);
}

TEST(PowerIteration, EstimatesKnownRadius) {
  // Diagonal matrix: radius is the largest diagonal entry.
  SparseMatrixBuilder b(3, 3);
  b.add(0, 0, 0.2);
  b.add(1, 1, 0.8);
  b.add(2, 2, 0.5);
  const auto result = estimate_spectral_radius(b.build());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.spectral_radius_estimate, 0.8, 1e-6);
}

TEST(PowerIteration, SubstochasticBelowOne) {
  Rng rng(888);
  const auto q = random_substochastic(30, 0.1, rng);
  const auto result = estimate_spectral_radius(q);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.spectral_radius_estimate, 1.0);
}

TEST(PowerIteration, NilpotentGivesZero) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.0);  // strictly upper triangular => nilpotent
  const auto result = estimate_spectral_radius(b.build());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.spectral_radius_estimate, 0.0, 1e-9);
}

}  // namespace
}  // namespace recoverd::linalg
