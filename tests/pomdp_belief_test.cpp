#include "pomdp/belief.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "models/two_server.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

TEST(Belief, Constructors) {
  const Belief u = Belief::uniform(4);
  for (StateId s = 0; s < 4; ++s) EXPECT_DOUBLE_EQ(u[s], 0.25);

  const Belief p = Belief::point(3, 1);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_EQ(p.most_likely(), 1u);

  const std::vector<StateId> support{0, 2};
  const Belief s = Belief::uniform_over(3, support);
  EXPECT_DOUBLE_EQ(s[0], 0.5);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 0.5);
}

TEST(Belief, NormalizesInput) {
  const Belief b(std::vector<double>{2.0, 6.0});
  EXPECT_DOUBLE_EQ(b[0], 0.25);
  EXPECT_DOUBLE_EQ(b[1], 0.75);
}

TEST(Belief, RejectsInvalidInput) {
  EXPECT_THROW(Belief(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(Belief(std::vector<double>{0.0, 0.0}), PreconditionError);
  EXPECT_THROW(Belief(std::vector<double>{-0.5, 1.5}), PreconditionError);
}

TEST(Belief, EntropyBounds) {
  EXPECT_DOUBLE_EQ(Belief::point(5, 2).entropy(), 0.0);
  EXPECT_NEAR(Belief::uniform(4).entropy(), std::log(4.0), 1e-12);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Belief b = random_belief(6, rng);
    EXPECT_GE(b.entropy(), 0.0);
    EXPECT_LE(b.entropy(), std::log(6.0) + 1e-12);
  }
}

TEST(BeliefUpdate, PredictMatchesHandComputation) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  // π = [0.2 Null, 0.5 Fault(a), 0.3 Fault(b)], action Restart(a):
  // Fault(a) mass moves to Null, rest stays.
  const Belief pi(std::vector<double>{0.2, 0.5, 0.3});
  const auto pred = predict_state_distribution(p, pi, ids.restart_a);
  EXPECT_NEAR(pred[ids.null_state], 0.7, 1e-12);
  EXPECT_NEAR(pred[ids.fault_a], 0.0, 1e-12);
  EXPECT_NEAR(pred[ids.fault_b], 0.3, 1e-12);
}

TEST(BeliefUpdate, BayesRuleMatchesHandComputation) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  // Uniform prior, Observe, then alarm(a):
  //  weight(Null)     = 1/3 · 0.05
  //  weight(Fault(a)) = 1/3 · 0.9
  //  weight(Fault(b)) = 0
  const Belief pi = Belief::uniform(3);
  const auto upd = update_belief(p, pi, ids.observe, ids.alarm_a);
  ASSERT_TRUE(upd.has_value());
  const double gamma = (0.05 + 0.9) / 3.0;
  EXPECT_NEAR(upd->likelihood, gamma, 1e-12);
  EXPECT_NEAR(upd->next[ids.null_state], 0.05 / 0.95, 1e-12);
  EXPECT_NEAR(upd->next[ids.fault_a], 0.9 / 0.95, 1e-12);
  EXPECT_NEAR(upd->next[ids.fault_b], 0.0, 1e-12);
}

TEST(BeliefUpdate, ImpossibleObservationReturnsNullopt) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  // From a point belief on Fault(a), observation alarm(b) has probability 0
  // under Observe (Fault(a) never emits alarm(b), and the state persists).
  const Belief pi = Belief::point(3, ids.fault_a);
  const auto upd = update_belief(p, pi, ids.observe, ids.alarm_b);
  EXPECT_FALSE(upd.has_value());
}

TEST(BeliefUpdate, LikelihoodMatchesObservationLikelihood) {
  const Pomdp p = models::make_two_server();
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Belief pi = random_belief(3, rng);
    for (ActionId a = 0; a < p.num_actions(); ++a) {
      for (ObsId o = 0; o < p.num_observations(); ++o) {
        const double gamma = observation_likelihood(p, pi, a, o);
        const auto upd = update_belief(p, pi, a, o);
        if (gamma > 0.0) {
          ASSERT_TRUE(upd.has_value());
          EXPECT_NEAR(upd->likelihood, gamma, 1e-12);
        } else {
          EXPECT_FALSE(upd.has_value());
        }
      }
    }
  }
}

TEST(BeliefSuccessors, ProbabilitiesSumToOneAndMatchUpdates) {
  const Pomdp p = models::make_two_server();
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const Belief pi = random_belief(3, rng);
    for (ActionId a = 0; a < p.num_actions(); ++a) {
      const auto branches = belief_successors(p, pi, a);
      double total = 0.0;
      for (const auto& br : branches) {
        total += br.probability;
        const auto upd = update_belief(p, pi, a, br.obs);
        ASSERT_TRUE(upd.has_value());
        EXPECT_NEAR(upd->likelihood, br.probability, 1e-12);
        EXPECT_LT(upd->next.distance(br.posterior), 1e-12);
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(BeliefSuccessors, LawOfTotalProbability) {
  // Averaging the posteriors weighted by branch probability must reproduce
  // the predicted distribution (Bayes consistency).
  const Pomdp p = models::make_two_server();
  Rng rng(29);
  const Belief pi = random_belief(3, rng);
  for (ActionId a = 0; a < p.num_actions(); ++a) {
    const auto pred = predict_state_distribution(p, pi, a);
    std::vector<double> mixed(3, 0.0);
    for (const auto& br : belief_successors(p, pi, a)) {
      linalg::axpy(br.probability, br.posterior.probabilities(), mixed);
    }
    EXPECT_TRUE(linalg::approx_equal(mixed, pred, 1e-12));
  }
}

}  // namespace
}  // namespace recoverd
