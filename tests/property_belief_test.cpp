// Parameterized Bayes-filter properties: on every model, the belief update
// machinery (Eq. 3/4) must be a consistent probability filter, and the
// simulator's sampled observations must match the model's likelihoods.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "linalg/vector_ops.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/sampling.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

struct ModelCase {
  std::string name;
  std::function<Pomdp()> make;
};

std::vector<ModelCase> model_zoo() {
  return {
      {"two_server", [] { return models::make_two_server(); }},
      {"two_server_terminate",
       [] { return models::make_two_server_without_notification(50.0); }},
      {"emn_base", [] { return models::make_emn_base(); }},
      {"emn_recovery", [] { return models::make_emn_recovery_model(); }},
  };
}

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

class BeliefPropertyTest : public ::testing::TestWithParam<ModelCase> {
 protected:
  BeliefPropertyTest() : model_(GetParam().make()) {}
  Pomdp model_;
};

TEST_P(BeliefPropertyTest, SuccessorProbabilitiesFormDistribution) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Belief pi = random_belief(model_.num_states(), rng);
    for (ActionId a = 0; a < model_.num_actions(); ++a) {
      const auto branches = belief_successors(model_, pi, a);
      double total = 0.0;
      for (const auto& br : branches) {
        EXPECT_GT(br.probability, 0.0);
        total += br.probability;
        EXPECT_NEAR(linalg::sum(br.posterior.probabilities()), 1.0, 1e-9);
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST_P(BeliefPropertyTest, LawOfTotalProbabilityHolds) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Belief pi = random_belief(model_.num_states(), rng);
    for (ActionId a = 0; a < model_.num_actions(); ++a) {
      const auto pred = predict_state_distribution(model_, pi, a);
      std::vector<double> mixed(model_.num_states(), 0.0);
      for (const auto& br : belief_successors(model_, pi, a)) {
        linalg::axpy(br.probability, br.posterior.probabilities(), mixed);
      }
      EXPECT_TRUE(linalg::approx_equal(mixed, pred, 1e-9));
    }
  }
}

TEST_P(BeliefPropertyTest, FlooredSuccessorsAreSubsetOfExact) {
  Rng rng(11);
  const Belief pi = random_belief(model_.num_states(), rng);
  for (ActionId a = 0; a < model_.num_actions(); ++a) {
    const auto exact = belief_successors(model_, pi, a);
    const auto floored = belief_successors(model_, pi, a, 1e-2);
    EXPECT_LE(floored.size(), exact.size());
    for (const auto& fb : floored) {
      EXPECT_GE(fb.probability, 1e-2);
      bool found = false;
      for (const auto& eb : exact) {
        if (eb.obs == fb.obs) {
          EXPECT_NEAR(eb.probability, fb.probability, 1e-12);
          EXPECT_LT(eb.posterior.distance(fb.posterior), 1e-12);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(BeliefPropertyTest, SampledObservationsMatchLikelihoods) {
  // Chi-square-lite: empirical frequency of each observation from a fixed
  // state/action must match q within ~4 sigma.
  Rng rng(13);
  const StateId s = model_.num_states() > 2 ? 1 : 0;
  const ActionId a = model_.mdp().find_action("Observe") != kInvalidId
                         ? model_.mdp().find_action("Observe")
                         : 0;
  const int n = 20000;
  std::vector<int> counts(model_.num_observations(), 0);
  for (int i = 0; i < n; ++i) ++counts[sample_observation(model_, s, a, rng)];
  for (ObsId o = 0; o < model_.num_observations(); ++o) {
    const double p = model_.observation_prob(s, a, o);
    const double sigma = std::sqrt(p * (1.0 - p) / n) + 1e-9;
    EXPECT_NEAR(counts[o] / static_cast<double>(n), p, 4.0 * sigma + 2e-3)
        << "obs " << model_.observation_name(o);
  }
}

TEST_P(BeliefPropertyTest, SampledTransitionsMatchModel) {
  Rng rng(17);
  const StateId s = model_.num_states() > 2 ? 2 : 0;
  for (ActionId a = 0; a < model_.num_actions(); ++a) {
    std::vector<int> counts(model_.num_states(), 0);
    const int n = 5000;
    for (int i = 0; i < n; ++i) ++counts[sample_transition(model_.mdp(), s, a, rng)];
    for (StateId t = 0; t < model_.num_states(); ++t) {
      const double p = model_.mdp().transition_prob(s, a, t);
      EXPECT_NEAR(counts[t] / static_cast<double>(n), p, 0.03);
    }
  }
}

TEST_P(BeliefPropertyTest, RepeatedUpdatesKeepBeliefNormalized) {
  Rng rng(19);
  Belief pi = Belief::uniform(model_.num_states());
  StateId hidden = model_.num_states() - 1;
  const ActionId a = model_.mdp().find_action("Observe") != kInvalidId
                         ? model_.mdp().find_action("Observe")
                         : 0;
  for (int i = 0; i < 50; ++i) {
    hidden = sample_transition(model_.mdp(), hidden, a, rng);
    const ObsId obs = sample_observation(model_, hidden, a, rng);
    const auto upd = update_belief(model_, pi, a, obs);
    ASSERT_TRUE(upd.has_value());
    pi = upd->next;
    EXPECT_NEAR(linalg::sum(pi.probabilities()), 1.0, 1e-9);
    EXPECT_GE(pi[hidden], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, BeliefPropertyTest, ::testing::ValuesIn(model_zoo()),
                         [](const ::testing::TestParamInfo<ModelCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace recoverd
