// Weighted-injection edge cases of sim::FaultInjector: zero weights, a
// single fault, unnormalised weight sums, and the one-weight-per-fault
// precondition.
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "util/check.hpp"

namespace recoverd::sim {
namespace {

TEST(FaultInjectorTest, ZeroWeightFaultIsNeverSampled) {
  const std::vector<StateId> faults = {3, 5, 7};
  const std::array<double, 3> weights = {1.0, 0.0, 1.0};
  const FaultInjector injector(faults, weights);
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(injector.sample(rng), StateId{5});
  }
}

TEST(FaultInjectorTest, SingleFaultAlwaysReturned) {
  const FaultInjector uniform({StateId{9}});
  const std::array<double, 1> weights = {0.25};
  const FaultInjector weighted({StateId{4}}, weights);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(uniform.sample(rng), StateId{9});
    EXPECT_EQ(weighted.sample(rng), StateId{4});
  }
}

TEST(FaultInjectorTest, WeightsFarAboveOneAreNormalised) {
  // Sum 1000 ≫ 1: sampling must follow the *ratios* (1:9), not treat the
  // values as probabilities.
  const std::vector<StateId> faults = {1, 2};
  const std::array<double, 2> weights = {100.0, 900.0};
  const FaultInjector injector(faults, weights);
  Rng rng(2024);
  std::map<StateId, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[injector.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / draws, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / draws, 0.9, 0.02);
}

TEST(FaultInjectorTest, TinyWeightsAreNormalisedToo) {
  const std::vector<StateId> faults = {1, 2};
  const std::array<double, 2> weights = {1e-8, 3e-8};
  const FaultInjector injector(faults, weights);
  Rng rng(99);
  std::map<StateId, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[injector.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / draws, 0.25, 0.02);
}

TEST(FaultInjectorTest, MismatchedWeightCountThrows) {
  const std::array<double, 2> weights = {1.0, 2.0};
  EXPECT_THROW(FaultInjector({1, 2, 3}, weights), PreconditionError);
}

TEST(FaultInjectorTest, EmptyFaultSetThrows) {
  EXPECT_THROW(FaultInjector({}), PreconditionError);
}

TEST(FaultInjectorTest, UniformCoversAllFaults) {
  const std::vector<StateId> faults = {2, 4, 6, 8};
  const FaultInjector injector(faults);
  Rng rng(5);
  std::map<StateId, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[injector.sample(rng)];
  for (StateId f : faults) {
    EXPECT_NEAR(static_cast<double>(counts[f]) / 8000.0, 0.25, 0.03)
        << "fault " << f;
  }
}

}  // namespace
}  // namespace recoverd::sim
