#include "models/pipeline.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "models/topology.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/conditions.hpp"
#include "sim/experiment.hpp"
#include "util/check.hpp"

namespace recoverd::models {
namespace {

TEST(PipelineModel, ShapeMatchesConfiguration) {
  PipelineConfig config;
  config.stages = 4;
  const Pomdp p = make_pipeline_base(config);
  // null + 4 crash + 2 host + 4 zombie = 11 states; 4 restarts + 2 reboots +
  // observe = 7 actions; 2^(4+1) observations.
  EXPECT_EQ(p.num_states(), 11u);
  EXPECT_EQ(p.num_actions(), 7u);
  EXPECT_EQ(p.num_observations(), 32u);
  EXPECT_TRUE(check_condition1(p.mdp()).satisfied);
  EXPECT_TRUE(check_condition2(p.mdp()).satisfied);
  EXPECT_FALSE(detect_recovery_notification(p));
}

TEST(PipelineModel, AnyFaultDropsAllTraffic) {
  // No redundancy: every single fault kills the whole pipeline.
  const Topology t = make_pipeline_topology();
  for (ComponentId c = 0; c < t.num_components(); ++c) {
    std::vector<bool> faulty(t.num_components(), false);
    faulty[c] = true;
    EXPECT_NEAR(t.drop_fraction(faulty), 1.0, 1e-12);
  }
}

TEST(PipelineModel, PathAlarmCannotLocaliseZombies) {
  // After a path alarm with silent pings, all stage zombies must carry
  // exactly equal posterior mass — total ambiguity.
  const Pomdp p = make_pipeline_base();
  const Mdp& m = p.mdp();
  const ActionId observe = m.find_action("Observe");
  std::vector<StateId> faults;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!m.is_goal(s)) faults.push_back(s);
  }
  const Belief prior = Belief::uniform_over(p.num_states(), faults);
  // Path monitor is the last bit (monitor index = stages).
  const ObsId path_alarm_only = 1u << 4;
  const auto upd = update_belief(p, prior, observe, path_alarm_only);
  ASSERT_TRUE(upd.has_value());
  const double z1 = upd->next[m.find_state("Zombie(Stage1)")];
  for (int i = 2; i <= 4; ++i) {
    std::string name = "Zombie(Stage";
    name += std::to_string(i);
    name += ")";
    EXPECT_NEAR(upd->next[m.find_state(name)], z1, 1e-12) << name;
  }
  EXPECT_GT(z1, 0.05);
}

TEST(PipelineModel, RaBoundConvergesAndControllerRecovers) {
  const Pomdp base = make_pipeline_base();
  const Pomdp recovery = make_pipeline_recovery_model();
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), 64);

  std::vector<StateId> zombies;
  for (StateId s = 0; s < base.num_states(); ++s) {
    const std::string& name = base.mdp().state_name(s);
    if (name.rfind("Zombie", 0) == 0) zombies.push_back(s);
  }
  ASSERT_EQ(zombies.size(), 4u);

  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController c(recovery, set, opts);
  sim::FaultInjector injector(zombies);
  sim::EpisodeConfig config;
  config.observe_action = base.mdp().find_action("Observe");
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (!base.mdp().is_goal(s)) config.fault_support.push_back(s);
  }
  const auto result = sim::run_experiment(base, c, injector, 80, 7, config);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
  // Under total path ambiguity the controller must try multiple restarts on
  // average (it cannot localise from the path monitor alone).
  EXPECT_GT(result.recovery_actions.mean(), 1.0);
}

TEST(PipelineModel, Validation) {
  PipelineConfig config;
  config.stages = 1;
  EXPECT_THROW(make_pipeline_topology(config), PreconditionError);
  config.stages = 15;
  EXPECT_THROW(make_pipeline_topology(config), PreconditionError);
}

}  // namespace
}  // namespace recoverd::models
