#include "pomdp/bellman.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "models/two_server.hpp"
#include "pomdp/value_iteration.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

const LeafEvaluator kZeroLeaf = [](const Belief&) { return 0.0; };

TEST(Bellman, DepthZeroReturnsLeafValue) {
  const Pomdp p = models::make_two_server();
  const Belief pi = Belief::uniform(3);
  const LeafEvaluator leaf = [](const Belief& b) { return -2.0 * b[1]; };
  EXPECT_DOUBLE_EQ(bellman_value(p, pi, 0, leaf), -2.0 / 3.0);
}

TEST(Bellman, DepthOneMatchesHandComputationAtVertex) {
  // At the point belief Fault(a) with zero leaf, the depth-1 value is
  // max_a π·r(a) = r(Fault(a), Restart(a)) = -0.5.
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  const Belief pi = Belief::point(3, ids.fault_a);
  EXPECT_DOUBLE_EQ(bellman_value(p, pi, 1, kZeroLeaf), -0.5);
}

TEST(Bellman, ActionValuesIdentifyBestAction) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  const Belief pi = Belief::point(3, ids.fault_a);
  const auto values = bellman_action_values(p, pi, 1, kZeroLeaf);
  ASSERT_EQ(values.size(), p.num_actions());
  EXPECT_DOUBLE_EQ(values[ids.restart_a].value, -0.5);
  EXPECT_DOUBLE_EQ(values[ids.restart_b].value, -1.0);
  EXPECT_DOUBLE_EQ(values[ids.observe].value, -0.5);
  const auto best = bellman_best_action(p, pi, 1, kZeroLeaf);
  // Restart(a) and Observe tie at -0.5; ties break to the lowest ActionId.
  EXPECT_EQ(best.action, std::min(ids.restart_a, ids.observe));
  EXPECT_DOUBLE_EQ(best.value, -0.5);
}

TEST(Bellman, ValueDecreasesWithDepthUnderZeroLeaf) {
  // With zero leaf values and non-positive rewards, V_d(π) is non-increasing
  // in d (each extra level can only add non-positive reward).
  const Pomdp p = models::make_two_server_with_notification();
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Belief pi = random_belief(3, rng);
    double prev = bellman_value(p, pi, 0, kZeroLeaf);
    for (int depth = 1; depth <= 4; ++depth) {
      const double v = bellman_value(p, pi, depth, kZeroLeaf);
      EXPECT_LE(v, prev + 1e-12) << "depth " << depth;
      prev = v;
    }
  }
}

TEST(Bellman, FiniteHorizonUpperBoundsMdpValueCombination) {
  // V_d(π) with zero leaves upper-bounds the optimal POMDP value, which in
  // turn is bounded by the QMDP combination Σ π(s) V_m(s) from above; here
  // we verify the weaker sandwich V_d(π) ≥ V*_m-combination is NOT required,
  // but V_d at point beliefs must upper-bound the MDP value at that state
  // (full observability can only help, and depth-d truncation only adds).
  const Pomdp p = models::make_two_server_with_notification();
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  for (StateId s = 0; s < p.num_states(); ++s) {
    const Belief pi = Belief::point(3, s);
    for (int depth = 0; depth <= 4; ++depth) {
      EXPECT_GE(bellman_value(p, pi, depth, kZeroLeaf) + 1e-12, vi.values[s]);
    }
  }
}

TEST(Bellman, DeepExpansionConvergesToMdpValueUnderPerfectObservation) {
  // With perfect monitors the belief collapses to the true state after one
  // action, so the POMDP value at a point belief equals the MDP value, and
  // deep expansions converge to it.
  models::TwoServerParams params;
  params.coverage = 1.0;
  params.false_positive = 0.0;
  const Pomdp p = models::make_two_server_with_notification(params);
  const auto ids = models::two_server_ids(p);
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  const Belief pi = Belief::point(3, ids.fault_a);
  EXPECT_NEAR(bellman_value(p, pi, 6, kZeroLeaf), vi.values[ids.fault_a], 1e-9);
}

TEST(Bellman, ApplyLpEqualsDepthOne) {
  const Pomdp p = models::make_two_server();
  Rng rng(11);
  const LeafEvaluator leaf = [](const Belief& b) { return -3.0 * (1.0 - b[0]); };
  for (int trial = 0; trial < 10; ++trial) {
    const Belief pi = random_belief(3, rng);
    EXPECT_DOUBLE_EQ(apply_lp(p, pi, leaf), bellman_value(p, pi, 1, leaf));
  }
}

TEST(Bellman, DiscountingShrinksFutureContribution) {
  const Pomdp p = models::make_two_server();
  const Belief pi = Belief::uniform(3);
  const LeafEvaluator leaf = [](const Belief&) { return -10.0; };
  const double undiscounted = bellman_value(p, pi, 1, leaf, 1.0);
  const double discounted = bellman_value(p, pi, 1, leaf, 0.5);
  // leaf contributes via β: less negative under discounting.
  EXPECT_GT(discounted, undiscounted);
}

TEST(Bellman, ValidatesArguments) {
  const Pomdp p = models::make_two_server();
  const Belief pi = Belief::uniform(3);
  EXPECT_THROW(bellman_value(p, pi, -1, kZeroLeaf), PreconditionError);
  EXPECT_THROW(bellman_value(p, pi, 1, kZeroLeaf, 1.5), PreconditionError);
  EXPECT_THROW(bellman_action_values(p, pi, 0, kZeroLeaf), PreconditionError);
  EXPECT_THROW(bellman_value(p, pi, 1, LeafEvaluator{}), PreconditionError);
  const Belief wrong_dim = Belief::uniform(5);
  EXPECT_THROW(bellman_value(p, wrong_dim, 1, kZeroLeaf), PreconditionError);
}

}  // namespace
}  // namespace recoverd
