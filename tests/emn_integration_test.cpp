// End-to-end EMN integration: a miniature Table 1 campaign asserting the
// paper's headline orderings hold in CI, not just in the bench binaries.
#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "models/emn.hpp"
#include "sim/experiment.hpp"

namespace recoverd {
namespace {

class EmnCampaign : public ::testing::Test {
 protected:
  static constexpr std::size_t kFaults = 300;
  static constexpr std::uint64_t kSeed = 2006;

  EmnCampaign()
      : base_(models::make_emn_base()),
        recovery_(models::make_emn_recovery_model()),
        ids_(models::emn_ids(base_)),
        injector_(std::vector<StateId>(ids_.topo.zombie_states.begin(),
                                       ids_.topo.zombie_states.end())) {
    config_.observe_action = ids_.topo.observe_action;
    for (StateId s = 0; s < base_.num_states(); ++s) {
      if (!base_.mdp().is_goal(s)) config_.fault_support.push_back(s);
    }
  }

  sim::ExperimentResult run_bounded() {
    bounds::BoundSet set = bounds::make_ra_bound_set(recovery_.mdp(), 64);
    controller::BootstrapOptions boot;
    boot.iterations = 10;
    boot.tree_depth = 2;
    boot.observe_action = ids_.topo.observe_action;
    boot.seed = kSeed;
    boot.branch_floor = 1e-2;
    controller::bootstrap_bounds(recovery_, set,
                                 Belief::uniform(recovery_.num_states()), boot);
    controller::BoundedControllerOptions opts;
    opts.branch_floor = 1e-2;
    controller::BoundedController c(recovery_, set, opts);
    return run_experiment(base_, c, injector_, kFaults, kSeed, config_);
  }

  Pomdp base_;
  Pomdp recovery_;
  models::EmnIds ids_;
  sim::FaultInjector injector_;
  sim::EpisodeConfig config_;
};

TEST_F(EmnCampaign, BoundedBeatsMostLikelyAndHeuristicD1OnCost) {
  const auto bounded = run_bounded();

  controller::MostLikelyControllerOptions ml_opts;
  ml_opts.observe_action = ids_.topo.observe_action;
  controller::MostLikelyController most_likely(base_, ml_opts);
  const auto ml = run_experiment(base_, most_likely, injector_, kFaults, kSeed, config_);

  controller::HeuristicControllerOptions h_opts;
  h_opts.branch_floor = 1e-2;
  controller::HeuristicController heuristic(base_, h_opts);
  const auto h1 = run_experiment(base_, heuristic, injector_, kFaults, kSeed, config_);

  // Paper Table 1 orderings (cost): Bounded < Heuristic d1 < Most Likely.
  EXPECT_LT(bounded.cost.mean() - bounded.cost.ci95_halfwidth(),
            ml.cost.mean() + ml.cost.ci95_halfwidth());
  EXPECT_LT(bounded.cost.mean(),
            h1.cost.mean() + h1.cost.ci95_halfwidth() + bounded.cost.ci95_halfwidth());
  EXPECT_LT(h1.cost.mean() - h1.cost.ci95_halfwidth(),
            ml.cost.mean() + ml.cost.ci95_halfwidth());

  // §5: "in the 10,000 fault injections, none of the controllers ever quit
  // without recovering the system."
  EXPECT_EQ(bounded.unrecovered, 0u);
  EXPECT_EQ(ml.unrecovered, 0u);
  EXPECT_EQ(h1.unrecovered, 0u);
  EXPECT_EQ(bounded.not_terminated, 0u);

  // Bounded terminates soon after actual recovery (recovery ≈ residual).
  EXPECT_LT(bounded.recovery_time.mean() - bounded.residual_time.mean(), 60.0);
  // And with a bounded number of monitor calls (paper: 7.69).
  EXPECT_LT(bounded.monitor_calls.mean(), 12.0);
  EXPECT_GT(bounded.monitor_calls.mean(), 2.0);
}

TEST_F(EmnCampaign, OnlineImprovementTightensTheBoundDuringTheCampaign) {
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery_.mdp(), 64);
  const Belief reference = Belief::uniform(recovery_.num_states());
  const double before = set.evaluate(reference.probabilities());

  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController c(recovery_, set, opts);
  const auto result = run_experiment(base_, c, injector_, 50, kSeed, config_);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_GT(set.size(), 1u);  // online updates added hyperplanes
  EXPECT_GE(set.evaluate(reference.probabilities()), before);
}

TEST_F(EmnCampaign, DeterministicGivenSeed) {
  const auto first = run_bounded();
  const auto second = run_bounded();
  EXPECT_DOUBLE_EQ(first.cost.mean(), second.cost.mean());
  EXPECT_DOUBLE_EQ(first.recovery_time.mean(), second.recovery_time.mean());
  EXPECT_EQ(first.unrecovered, second.unrecovered);
}

}  // namespace
}  // namespace recoverd
