#include "bounds/incremental_update.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "bounds/upper_bound.hpp"
#include "models/two_server.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::bounds {
namespace {

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

class IncrementalUpdateTest : public ::testing::Test {
 protected:
  IncrementalUpdateTest()
      : pomdp_(models::make_two_server_with_notification()),
        ids_(models::two_server_ids(pomdp_)),
        set_(make_ra_bound_set(pomdp_.mdp())) {}

  Pomdp pomdp_;
  models::TwoServerIds ids_;
  BoundSet set_;
};

TEST_F(IncrementalUpdateTest, BackupImprovesAtVertexBelief) {
  // RA-Bound at vertex Fault(a) is -2; the optimal value there is -0.5. One
  // point-based backup must lift the bound strictly (toward -0.5).
  const Belief pi = Belief::point(pomdp_.num_states(), ids_.fault_a);
  const auto result = improve_at(pomdp_, set_, pi);
  EXPECT_TRUE(result.added);
  EXPECT_GT(result.improvement(), 0.1);
  EXPECT_LE(result.value_after, -0.5 - 1e-12 + 1.0);  // still a lower bound of -0.5
  EXPECT_LE(result.value_after, -0.5 + 1e-9);
  EXPECT_EQ(result.backing_action, ids_.restart_a);
}

TEST_F(IncrementalUpdateTest, RepeatedBackupsConvergeTowardOptimum) {
  const Belief pi = Belief::point(pomdp_.num_states(), ids_.fault_a);
  double value = set_.evaluate(pi.probabilities());
  for (int i = 0; i < 20; ++i) {
    const auto result = improve_at(pomdp_, set_, pi);
    EXPECT_GE(result.value_after + 1e-12, value);
    value = result.value_after;
  }
  // At a vertex with deterministic recovery the bound reaches the optimum.
  EXPECT_NEAR(value, -0.5, 1e-6);
}

TEST_F(IncrementalUpdateTest, UpdatesNeverLowerTheBoundAnywhere) {
  Rng rng(31);
  std::vector<Belief> probes;
  for (int i = 0; i < 25; ++i) probes.push_back(random_belief(pomdp_.num_states(), rng));
  std::vector<double> before;
  before.reserve(probes.size());
  for (const auto& pi : probes) before.push_back(set_.evaluate(pi.probabilities()));

  for (int i = 0; i < 10; ++i) {
    improve_at(pomdp_, set_, random_belief(pomdp_.num_states(), rng));
  }
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_GE(set_.evaluate(probes[i].probabilities()) + 1e-12, before[i]);
  }
}

TEST_F(IncrementalUpdateTest, BoundStaysBelowQmdpUpperBound) {
  // Every hyperplane produced by backups must remain a valid lower bound:
  // check against the QMDP upper bound at random beliefs and at vertices.
  Rng rng(17);
  const auto qmdp = compute_qmdp_bound(pomdp_.mdp());
  ASSERT_TRUE(qmdp.converged());
  for (int i = 0; i < 30; ++i) {
    improve_at(pomdp_, set_, random_belief(pomdp_.num_states(), rng));
  }
  for (int i = 0; i < 50; ++i) {
    const Belief pi = random_belief(pomdp_.num_states(), rng);
    EXPECT_LE(set_.evaluate(pi.probabilities()), qmdp.evaluate(pi.probabilities()) + 1e-9);
  }
  for (StateId s = 0; s < pomdp_.num_states(); ++s) {
    const Belief pi = Belief::point(pomdp_.num_states(), s);
    EXPECT_LE(set_.evaluate(pi.probabilities()), qmdp.evaluate(pi.probabilities()) + 1e-9);
  }
}

TEST_F(IncrementalUpdateTest, LpMonotonicityPreservedAfterUpdates) {
  // Property 1(b) must keep holding as the set grows: V_B⁻ ≤ L_p V_B⁻.
  Rng rng(23);
  for (int i = 0; i < 15; ++i) {
    improve_at(pomdp_, set_, random_belief(pomdp_.num_states(), rng));
  }
  const LeafEvaluator leaf = [&](const Belief& b) {
    return set_.evaluate(b.probabilities());
  };
  for (int i = 0; i < 40; ++i) {
    const Belief pi = random_belief(pomdp_.num_states(), rng);
    EXPECT_LE(set_.evaluate(pi.probabilities()), apply_lp(pomdp_, pi, leaf) + 1e-9);
  }
}

TEST_F(IncrementalUpdateTest, NoGainNoGrowth) {
  // Once the bound is locally tight, further updates at the same belief stop
  // adding vectors.
  const Belief pi = Belief::point(pomdp_.num_states(), ids_.fault_a);
  for (int i = 0; i < 30; ++i) improve_at(pomdp_, set_, pi);
  const std::size_t size_before = set_.size();
  const auto result = improve_at(pomdp_, set_, pi);
  EXPECT_FALSE(result.added);
  EXPECT_EQ(set_.size(), size_before);
  EXPECT_NEAR(result.improvement(), 0.0, 1e-9);
}

TEST_F(IncrementalUpdateTest, GrowthIsAtMostOnePerUpdate) {
  Rng rng(41);
  std::size_t prev = set_.size();
  for (int i = 0; i < 20; ++i) {
    improve_at(pomdp_, set_, random_belief(pomdp_.num_states(), rng));
    EXPECT_LE(set_.size(), prev + 1);  // §4.1: at most one new vector per update
    prev = set_.size();
  }
}

TEST(IncrementalUpdateTerminate, WorksOnTerminateTransformedModel) {
  const double t_op = 40.0;
  const Pomdp p = models::make_two_server_without_notification(t_op);
  const auto ids = models::two_server_ids(p);
  BoundSet set = make_ra_bound_set(p.mdp());
  const auto qmdp = compute_qmdp_bound(p.mdp());
  ASSERT_TRUE(qmdp.converged());

  Rng rng(3);
  const Belief start = Belief::uniform_over(
      p.num_states(), std::vector<StateId>{ids.fault_a, ids.fault_b});
  double prev = set.evaluate(start.probabilities());
  for (int i = 0; i < 25; ++i) {
    const auto result = improve_at(p, set, start);
    EXPECT_GE(result.value_after + 1e-12, prev);
    prev = result.value_after;
    improve_at(p, set, random_belief(p.num_states(), rng));
  }
  EXPECT_LE(prev, qmdp.evaluate(start.probabilities()) + 1e-9);
  // Improvement over the raw RA value must be substantial (Fig. 5(a) shape).
  const BoundSet fresh = make_ra_bound_set(p.mdp());
  EXPECT_GT(prev, fresh.evaluate(start.probabilities()) + 1.0);
}

TEST(IncrementalUpdateValidation, RejectsBadArguments) {
  const Pomdp p = models::make_two_server_with_notification();
  BoundSet empty(p.num_states());
  const Belief pi = Belief::uniform(p.num_states());
  EXPECT_THROW(backup_vector(p, empty, pi), PreconditionError);
  BoundSet wrong_dim(p.num_states() + 1);
  wrong_dim.add(BoundVector(p.num_states() + 1, -1.0));
  EXPECT_THROW(backup_vector(p, wrong_dim, pi), PreconditionError);
  BoundSet ok = make_ra_bound_set(p.mdp());
  EXPECT_THROW(backup_vector(p, ok, pi, nullptr, 0.0), PreconditionError);
  EXPECT_THROW(backup_vector(p, ok, pi, nullptr, 1.5), PreconditionError);
}

}  // namespace
}  // namespace recoverd::bounds
