#include "linalg/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::linalg {
namespace {

TEST(SparseMatrixBuilder, BuildsSortedRows) {
  SparseMatrixBuilder b(3, 4);
  b.add(1, 3, 2.0);
  b.add(1, 0, 1.0);
  b.add(0, 2, 5.0);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nonzeros(), 3u);
  const auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 2u);
  EXPECT_EQ(row1[0].col, 0u);
  EXPECT_EQ(row1[1].col, 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(SparseMatrixBuilder, AccumulatesDuplicates) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 0, 0.5);
  b.add(0, 0, 0.25);
  b.add(1, 1, 1.0);
  b.add(1, 1, -1.0);  // cancels to zero and is dropped
  const SparseMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.75);
  EXPECT_EQ(m.row(1).size(), 0u);
}

TEST(SparseMatrixBuilder, DropToleranceRemovesNoise) {
  SparseMatrixBuilder b(1, 2);
  b.add(0, 0, 1e-15);
  b.add(0, 1, 0.5);
  const SparseMatrix m = b.build(1e-12);
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.5);
}

TEST(SparseMatrixBuilder, RejectsOutOfRange) {
  SparseMatrixBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), PreconditionError);
  EXPECT_THROW(b.add(0, 2, 1.0), PreconditionError);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(77);
  const std::size_t n = 20;
  SparseMatrixBuilder b(n, n);
  DenseMatrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.2)) {
        const double v = rng.uniform(-1.0, 1.0);
        b.add(i, j, v);
        dense.at(i, j) = v;
      }
    }
  }
  const SparseMatrix sparse = b.build();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto ys = sparse.multiply(x);
  const auto yd = dense.multiply(x);
  EXPECT_TRUE(approx_equal(ys, yd, 1e-12));
}

TEST(SparseMatrix, TransposeMultiplyMatchesTransposedMultiply) {
  Rng rng(99);
  const std::size_t rows = 12, cols = 8;
  SparseMatrixBuilder b(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.bernoulli(0.3)) b.add(i, j, rng.uniform(-2.0, 2.0));
    }
  }
  const SparseMatrix m = b.build();
  const SparseMatrix mt = m.transpose();
  std::vector<double> x(rows);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto via_transpose_multiply = m.multiply_transpose(x);
  const auto via_materialized = mt.multiply(x);
  EXPECT_TRUE(approx_equal(via_transpose_multiply, via_materialized, 1e-12));
}

TEST(SparseMatrix, MultiplyIntoMatchesAllocatingMultiply) {
  Rng rng(123);
  const std::size_t rows = 9, cols = 14;
  SparseMatrixBuilder b(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.bernoulli(0.25)) b.add(i, j, rng.uniform(-2.0, 2.0));
    }
  }
  const SparseMatrix m = b.build();
  std::vector<double> x(cols);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto expected = m.multiply(x);
  // Pre-poison the output: multiply_into must overwrite, not accumulate.
  std::vector<double> y(rows, 1e9);
  m.multiply_into(x, y);
  for (std::size_t i = 0; i < rows; ++i) EXPECT_DOUBLE_EQ(y[i], expected[i]);
}

TEST(SparseMatrix, MultiplyTransposeIntoMatchesAllocating) {
  Rng rng(321);
  const std::size_t rows = 11, cols = 7;
  SparseMatrixBuilder b(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.bernoulli(0.3)) b.add(i, j, rng.uniform(-2.0, 2.0));
    }
  }
  const SparseMatrix m = b.build();
  std::vector<double> x(rows);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  x[0] = 0.0;  // exercises the xi == 0 skip in the scatter loop
  const auto expected = m.multiply_transpose(x);
  std::vector<double> y(cols, -7.0);
  m.multiply_transpose_into(x, y);
  for (std::size_t j = 0; j < cols; ++j) EXPECT_DOUBLE_EQ(y[j], expected[j]);
}

TEST(SparseMatrix, IntoVariantsRejectMismatchedSpans) {
  SparseMatrixBuilder b(2, 3);
  b.add(0, 0, 1.0);
  const SparseMatrix m = b.build();
  std::vector<double> x3(3), x2(2), y2(2), y3(3);
  EXPECT_THROW(m.multiply_into(x2, y2), PreconditionError);
  EXPECT_THROW(m.multiply_into(x3, y3), PreconditionError);
  EXPECT_THROW(m.multiply_transpose_into(x3, y3), PreconditionError);
  EXPECT_THROW(m.multiply_transpose_into(x2, y2), PreconditionError);
  EXPECT_NO_THROW(m.multiply_into(x3, y2));
  EXPECT_NO_THROW(m.multiply_transpose_into(x2, y3));
}

TEST(SparseMatrix, RowSumsDetectStochasticity) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 0, 0.3);
  b.add(0, 1, 0.7);
  b.add(1, 1, 1.0);
  const auto sums = b.build().row_sums();
  EXPECT_NEAR(sums[0], 1.0, 1e-15);
  EXPECT_NEAR(sums[1], 1.0, 1e-15);
}

TEST(VectorOps, DotAxpyMax) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> c{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, c), 4.0 - 10.0 + 18.0);
  std::vector<double> y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
  EXPECT_DOUBLE_EQ(max_abs(c), 6.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, c), 7.0);
  EXPECT_DOUBLE_EQ(sum(a), 6.0);
}

TEST(VectorOps, ElementwiseMaxAndDominance) {
  const std::vector<double> a{1.0, 5.0};
  const std::vector<double> b{2.0, 3.0};
  const auto m = elementwise_max(a, b);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 5.0);
  EXPECT_TRUE(dominates(m, a));
  EXPECT_TRUE(dominates(m, b));
  EXPECT_FALSE(dominates(a, b));
  EXPECT_TRUE(dominates(a, std::vector<double>{1.0, 5.0 + 1e-12}, 1e-9));
}

TEST(VectorOps, NormalizeProbability) {
  std::vector<double> p{1.0, 3.0};
  normalize_probability(p);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(normalize_probability(zero), PreconditionError);
}

}  // namespace
}  // namespace recoverd::linalg
