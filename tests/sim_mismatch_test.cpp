// The chaos axes of sim::MismatchInjector: each axis in isolation, the
// flag parsing, and the determinism guarantees (fixed seed, and bitwise
// `--jobs` invariance of mismatch campaigns).
#include "sim/mismatch_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "sim/environment.hpp"
#include "sim/experiment.hpp"
#include "controller/most_likely_controller.hpp"
#include "util/check.hpp"

namespace recoverd::sim {
namespace {

CliArgs make_args(const std::vector<std::string>& flags) {
  std::vector<const char*> argv = {"test"};
  for (const auto& flag : flags) argv.push_back(flag.c_str());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(MismatchOptionsTest, DefaultsAreInert) {
  const MismatchOptions options;
  EXPECT_FALSE(options.enabled());
  const MismatchOptions parsed = parse_mismatch_options(make_args({}));
  EXPECT_FALSE(parsed.enabled());
  EXPECT_EQ(parsed.stuck_steps, 8u);
}

TEST(MismatchOptionsTest, ParsesEveryFlag) {
  const MismatchOptions options = parse_mismatch_options(make_args(
      {"--mismatch-obs-flip=0.1", "--mismatch-obs-drop=0.2",
       "--mismatch-stuck-rate=0.05", "--mismatch-stuck-steps=4",
       "--mismatch-action-fail=0.3", "--mismatch-transition-jitter=0.15"}));
  EXPECT_TRUE(options.enabled());
  EXPECT_DOUBLE_EQ(options.obs_flip_rate, 0.1);
  EXPECT_DOUBLE_EQ(options.obs_drop_rate, 0.2);
  EXPECT_DOUBLE_EQ(options.stuck_rate, 0.05);
  EXPECT_EQ(options.stuck_steps, 4u);
  EXPECT_DOUBLE_EQ(options.action_fail_rate, 0.3);
  EXPECT_DOUBLE_EQ(options.transition_jitter, 0.15);
  EXPECT_EQ(mismatch_flag_names().size(), 6u);
}

TEST(MismatchOptionsTest, OutOfRangeRatesThrow) {
  EXPECT_THROW(parse_mismatch_options(make_args({"--mismatch-obs-flip=1.5"})),
               PreconditionError);
  EXPECT_THROW(parse_mismatch_options(make_args({"--mismatch-action-fail=-0.1"})),
               PreconditionError);
}

class MismatchInjectorFixture : public ::testing::Test {
 protected:
  MismatchInjectorFixture()
      : model_(models::make_two_server()), ids_(models::two_server_ids(model_)) {}

  MismatchInjector make(const MismatchOptions& options, std::uint64_t seed = 11) {
    return MismatchInjector(model_, options, Rng(seed));
  }

  Pomdp model_;
  models::TwoServerIds ids_;
};

TEST_F(MismatchInjectorFixture, ActionFailureKeepsTrueStateInPlace) {
  MismatchOptions options;
  options.action_fail_rate = 1.0;
  options.exempt_action = ids_.observe;
  Environment env(model_, Rng(3), make(options));
  env.reset(ids_.fault_a);
  const auto step = env.step(ids_.restart_a);
  EXPECT_EQ(step.next_state, ids_.fault_a);  // the restart silently no-ops
  EXPECT_LT(step.reward, 0.0);               // but its cost still accrues
  EXPECT_EQ(env.mismatch()->actions_failed(), 1u);
}

TEST_F(MismatchInjectorFixture, CleanInjectorLeavesRestartDeterministic) {
  Environment env(model_, Rng(3), make({}));
  env.reset(ids_.fault_a);
  EXPECT_EQ(env.step(ids_.restart_a).next_state, ids_.null_state);
}

TEST_F(MismatchInjectorFixture, ExemptActionNeverFails) {
  MismatchOptions options;
  options.action_fail_rate = 1.0;
  options.exempt_action = ids_.observe;
  MismatchInjector injector = make(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.action_fails(ids_.observe));
    EXPECT_TRUE(injector.action_fails(ids_.restart_a));
  }
}

TEST_F(MismatchInjectorFixture, StuckOutageFreezesTheChannel) {
  MismatchOptions options;
  options.stuck_rate = 1.0;
  options.stuck_steps = 3;
  MismatchInjector injector = make(options);
  // First reading freezes (nothing delivered yet, so the fresh one is it).
  EXPECT_EQ(injector.corrupt_observation(ids_.alarm_a), ids_.alarm_a);
  // Fresh readings change; the frozen channel keeps replaying alarm_a.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(injector.corrupt_observation(ids_.clear), ids_.alarm_a);
  }
  EXPECT_GE(injector.stuck_readings(), 6u);
}

TEST_F(MismatchInjectorFixture, ResetClearsChannelState) {
  MismatchOptions options;
  options.stuck_rate = 1.0;
  options.stuck_steps = 5;
  MismatchInjector injector = make(options);
  EXPECT_EQ(injector.corrupt_observation(ids_.alarm_a), ids_.alarm_a);
  injector.reset();
  // After reset the next fresh reading freezes anew instead of replaying.
  EXPECT_EQ(injector.corrupt_observation(ids_.clear), ids_.clear);
}

TEST_F(MismatchInjectorFixture, DropReplaysTheStaleReading) {
  MismatchOptions options;
  options.obs_drop_rate = 1.0;
  MismatchInjector injector = make(options);
  // Nothing delivered yet: the first reading always gets through.
  EXPECT_EQ(injector.corrupt_observation(ids_.alarm_b), ids_.alarm_b);
  // Every later fresh reading is lost; the stale channel repeats alarm_b.
  EXPECT_EQ(injector.corrupt_observation(ids_.clear), ids_.alarm_b);
  EXPECT_EQ(injector.corrupt_observation(ids_.alarm_a), ids_.alarm_b);
  EXPECT_EQ(injector.observations_dropped(), 2u);
}

TEST_F(MismatchInjectorFixture, FlipResamplesNonBitStructuredAlphabets) {
  // Two-server has 3 observations (not a power of two), so ε-corruption
  // resamples the whole reading uniformly.
  MismatchOptions options;
  options.obs_flip_rate = 1.0;
  MismatchInjector injector = make(options);
  std::set<ObsId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(injector.corrupt_observation(ids_.clear));
  EXPECT_EQ(seen.size(), model_.num_observations());
  EXPECT_GT(injector.observations_flipped(), 0u);
}

TEST(MismatchInjectorEmnTest, FlipTogglesMonitorBitsOnBitStructuredAlphabets) {
  // EMN observations are joint monitor bit-vectors (|O| = 2^M); with ε = 1
  // every monitor bit flips, so the delivered reading is the complement.
  const Pomdp emn = models::make_emn_base();
  ASSERT_GE(emn.num_observations(), 2u);
  ASSERT_EQ(emn.num_observations() & (emn.num_observations() - 1), 0u);
  MismatchOptions options;
  options.obs_flip_rate = 1.0;
  MismatchInjector injector(emn, options, Rng(5));
  const ObsId mask = static_cast<ObsId>(emn.num_observations() - 1);
  EXPECT_EQ(injector.corrupt_observation(ObsId{0}), mask);
  EXPECT_EQ(injector.corrupt_observation(mask), ObsId{0});
  EXPECT_EQ(injector.corrupt_observation(ObsId{5}), ObsId{5} ^ mask);
}

TEST_F(MismatchInjectorFixture, JitteredRowsAreDistributionsOverAugmentedSupport) {
  MismatchOptions options;
  options.transition_jitter = 0.2;
  MismatchInjector injector = make(options);
  ASSERT_TRUE(injector.has_transition_jitter());
  const Mdp& mdp = model_.mdp();
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      const auto row = injector.perturbed_row(a, s);
      double sum = 0.0;
      std::set<std::size_t> allowed;
      for (const auto& entry : mdp.transition(a).row(s)) allowed.insert(entry.col);
      allowed.insert(s);  // the self-loop the jitter may add
      for (const auto& entry : row) {
        EXPECT_GE(entry.value, 0.0);
        EXPECT_TRUE(allowed.count(entry.col)) << "a=" << a << " s=" << s;
        sum += entry.value;
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "a=" << a << " s=" << s;
    }
  }
}

TEST_F(MismatchInjectorFixture, JitterPerturbsDeterministicRepairRows) {
  MismatchOptions options;
  options.transition_jitter = 0.25;
  MismatchInjector injector = make(options);
  // The model's restart_a row from fault_a is the point mass on Null; the
  // jittered world must put strictly positive mass on staying faulty.
  const auto row = injector.perturbed_row(ids_.restart_a, ids_.fault_a);
  double self_mass = 0.0;
  for (const auto& entry : row) {
    if (entry.col == ids_.fault_a) self_mass = entry.value;
  }
  EXPECT_GT(self_mass, 0.0);
  EXPECT_LT(self_mass, 0.25 + 1e-12);  // bounded by δ
}

TEST_F(MismatchInjectorFixture, GoalStateRowsStayExact) {
  MismatchOptions options;
  options.transition_jitter = 0.5;
  MismatchInjector injector = make(options);
  const Mdp& mdp = model_.mdp();
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto original = mdp.transition(a).row(ids_.null_state);
    const auto jittered = injector.perturbed_row(a, ids_.null_state);
    ASSERT_EQ(original.size(), jittered.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].col, jittered[i].col);
      EXPECT_EQ(original[i].value, jittered[i].value);
    }
  }
}

TEST_F(MismatchInjectorFixture, EqualSeedsGiveIdenticalChaos) {
  MismatchOptions options;
  options.obs_flip_rate = 0.3;
  options.action_fail_rate = 0.4;
  options.transition_jitter = 0.1;
  MismatchInjector a = make(options, 77);
  MismatchInjector b = make(options, 77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.corrupt_observation(ids_.clear), b.corrupt_observation(ids_.clear));
    EXPECT_EQ(a.action_fails(ids_.restart_a), b.action_fails(ids_.restart_a));
  }
  const auto row_a = a.perturbed_row(ids_.restart_a, ids_.fault_a);
  const auto row_b = b.perturbed_row(ids_.restart_a, ids_.fault_a);
  ASSERT_EQ(row_a.size(), row_b.size());
  for (std::size_t i = 0; i < row_a.size(); ++i) {
    EXPECT_EQ(row_a[i].value, row_b[i].value);
  }
}

// --- campaign-level determinism -------------------------------------------

void expect_identical(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.unrecovered, b.unrecovered);
  EXPECT_EQ(a.not_terminated, b.not_terminated);
  expect_identical(a.cost, b.cost);
  expect_identical(a.recovery_time, b.recovery_time);
  expect_identical(a.residual_time, b.residual_time);
  expect_identical(a.recovery_actions, b.recovery_actions);
  expect_identical(a.monitor_calls, b.monitor_calls);
}

class MismatchCampaignFixture : public ::testing::Test {
 protected:
  MismatchCampaignFixture()
      : base_(models::make_two_server()),
        ids_(models::two_server_ids(base_)),
        injector_({ids_.fault_a, ids_.fault_b}) {
    config_.observe_action = ids_.observe;
    config_.fault_support = {ids_.fault_a, ids_.fault_b};
    config_.max_steps = 400;
    config_.mismatch.obs_flip_rate = 0.15;
    config_.mismatch.obs_drop_rate = 0.1;
    config_.mismatch.action_fail_rate = 0.2;
    config_.mismatch.transition_jitter = 0.1;
  }

  ControllerFactory most_likely_factory() const {
    controller::MostLikelyControllerOptions opts;
    opts.observe_action = ids_.observe;
    const Pomdp& model = base_;
    return [&model, opts] {
      return std::make_unique<controller::MostLikelyController>(model, opts);
    };
  }

  Pomdp base_;
  models::TwoServerIds ids_;
  FaultInjector injector_;
  EpisodeConfig config_;
};

TEST_F(MismatchCampaignFixture, JobsInvarianceUnderChaos) {
  const auto factory = most_likely_factory();
  const auto serial = run_experiment(base_, factory, injector_, 80, 42, config_, 1);
  const auto threaded = run_experiment(base_, factory, injector_, 80, 42, config_, 4);
  expect_identical(serial, threaded);
}

TEST_F(MismatchCampaignFixture, RepeatedSeedsReproduceChaosCampaigns) {
  const auto factory = most_likely_factory();
  const auto first = run_experiment(base_, factory, injector_, 50, 9, config_, 2);
  const auto second = run_experiment(base_, factory, injector_, 50, 9, config_, 3);
  expect_identical(first, second);
}

TEST_F(MismatchCampaignFixture, DisabledMismatchMatchesCleanHarness) {
  // All-zero chaos rates must leave the harness on the exact clean code
  // path: same draws, same aggregates as a config without the field set.
  EpisodeConfig clean = config_;
  clean.mismatch = MismatchOptions{};
  EpisodeConfig zeroed = clean;
  zeroed.mismatch.stuck_steps = 17;  // inert without a stuck rate
  const auto factory = most_likely_factory();
  const auto a = run_experiment(base_, factory, injector_, 60, 4, clean, 1);
  const auto b = run_experiment(base_, factory, injector_, 60, 4, zeroed, 2);
  expect_identical(a, b);
}

}  // namespace
}  // namespace recoverd::sim
