#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace recoverd {
namespace {

TEST(Check, ExpectsThrowsWithContext) {
  try {
    RD_EXPECTS(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
  }
}

TEST(Check, EnsuresThrowsInvariantError) {
  EXPECT_THROW(RD_ENSURES(false, "broken"), InvariantError);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"Algorithm", "Cost"});
  table.add_row({"Bounded", TextTable::num(114.16)});
  table.add_row({"Oracle", TextTable::num(84.4, 1)});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Algorithm"), std::string::npos);
  EXPECT_NE(out.find("114.16"), std::string::npos);
  EXPECT_NE(out.find("84.4"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, EnforcesArity) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(CsvWriter, EscapesSpecialCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvWriter, NumericRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<double>{1.5, 2.25}, 2);
  EXPECT_EQ(os.str(), "1.50,2.25\n");
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--faults=500", "--seed=42", "--verbose",
                        "positional", "--rate=0.25", "--enabled=false"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("faults", 0), 500);
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("enabled", true));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(CliArgs, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--faults=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("faults", 0), PreconditionError);
}

TEST(CliArgs, RequireKnownCatchesTypos) {
  const char* argv[] = {"prog", "--falts=10"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.require_known({"faults", "seed"}), PreconditionError);
  const char* ok[] = {"prog", "--faults=10"};
  CliArgs good(2, ok);
  EXPECT_NO_THROW(good.require_known({"faults", "seed"}));
}

TEST(Logging, ThresholdFilters) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These must be cheap no-ops below threshold (no observable way to assert
  // stderr here; we assert the level round-trips and calls don't throw).
  EXPECT_NO_THROW(log_debug("dropped ", 1));
  EXPECT_NO_THROW(log_info("dropped"));
  set_log_level(prior);
}

TEST(Timer, MeasuresElapsedMonotonically) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  const double first = t.elapsed_seconds();
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  const double second = t.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), second + 1.0);
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace recoverd
