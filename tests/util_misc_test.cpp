#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include <csignal>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/crc64.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace recoverd {
namespace {

TEST(Check, ExpectsThrowsWithContext) {
  try {
    RD_EXPECTS(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
  }
}

TEST(Check, EnsuresThrowsInvariantError) {
  EXPECT_THROW(RD_ENSURES(false, "broken"), InvariantError);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"Algorithm", "Cost"});
  table.add_row({"Bounded", TextTable::num(114.16)});
  table.add_row({"Oracle", TextTable::num(84.4, 1)});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Algorithm"), std::string::npos);
  EXPECT_NE(out.find("114.16"), std::string::npos);
  EXPECT_NE(out.find("84.4"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, EnforcesArity) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(CsvWriter, EscapesSpecialCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvWriter, NumericRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row(std::vector<double>{1.5, 2.25}, 2);
  EXPECT_EQ(os.str(), "1.50,2.25\n");
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--faults=500", "--seed=42", "--verbose",
                        "positional", "--rate=0.25", "--enabled=false"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("faults", 0), 500);
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("enabled", true));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(CliArgs, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--faults=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("faults", 0), PreconditionError);
}

TEST(CliArgs, ValidatedCountsRejectZeroAndNegatives) {
  const char* argv[] = {"prog", "--jobs=0", "--sessions=-3", "--warmup=0",
                        "--deadline-ms=-1.5", "--memo-max-mb=16"};
  CliArgs args(6, argv);
  // get_count: >= 1. Zero and negatives used to slip through the size_t
  // cast (an empty fleet, an 18-exabyte memo cap); now they fail loudly
  // with the offending value in the message.
  try {
    args.get_count("jobs", 1);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("jobs"), std::string::npos);
    EXPECT_NE(what.find("0"), std::string::npos);
  }
  EXPECT_THROW(args.get_count("sessions", 1), PreconditionError);
  EXPECT_EQ(args.get_count("memo-max-mb", 64), 16u);
  EXPECT_EQ(args.get_count("absent", 7), 7u);
  // get_size: >= 0 — zero is meaningful, negatives are not.
  EXPECT_EQ(args.get_size("warmup", 5), 0u);
  EXPECT_THROW(args.get_size("sessions", 0), PreconditionError);
  // get_positive_double: > 0 when the flag is passed explicitly.
  EXPECT_THROW(args.get_positive_double("deadline-ms", 1.0), PreconditionError);
  EXPECT_DOUBLE_EQ(args.get_positive_double("absent", 2.5), 2.5);
  const char* zero[] = {"prog", "--deadline-ms=0"};
  CliArgs zero_args(2, zero);
  EXPECT_THROW(zero_args.get_positive_double("deadline-ms", 1.0),
               PreconditionError);
}

TEST(CliArgs, RequireKnownCatchesTypos) {
  const char* argv[] = {"prog", "--falts=10"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.require_known({"faults", "seed"}), PreconditionError);
  const char* ok[] = {"prog", "--faults=10"};
  CliArgs good(2, ok);
  EXPECT_NO_THROW(good.require_known({"faults", "seed"}));
}

TEST(Logging, ThresholdFilters) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These must be cheap no-ops below threshold (no observable way to assert
  // stderr here; we assert the level round-trips and calls don't throw).
  EXPECT_NO_THROW(log_debug("dropped ", 1));
  EXPECT_NO_THROW(log_info("dropped"));
  set_log_level(prior);
}

TEST(Shutdown, ProgrammaticRequestLatchesUntilReset) {
  reset_shutdown_for_tests();
  EXPECT_FALSE(shutdown_requested());
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  EXPECT_TRUE(shutdown_requested());  // latched, not consumed
  reset_shutdown_for_tests();
  EXPECT_FALSE(shutdown_requested());
}

TEST(Shutdown, FirstSignalSetsFlagInsteadOfKilling) {
  install_shutdown_handlers();
  reset_shutdown_for_tests();
  EXPECT_FALSE(shutdown_requested());
  // The first SIGTERM only sets the flag (the handler then restores the
  // default disposition so a second one can still kill a hung process —
  // which is why this test sends exactly one).
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(shutdown_requested());
  install_shutdown_handlers();  // re-arm for any later test in this binary
  reset_shutdown_for_tests();
}

TEST(Timer, MeasuresElapsedMonotonically) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  const double first = t.elapsed_seconds();
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  const double second = t.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), second + 1.0);
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

// CRC-64/XZ check value (the CRC of the ASCII digits "123456789") — pins
// the polynomial, reflection, init and final-XOR conventions, and with them
// the bound-artifact and fleet-checkpoint file formats.
TEST(Crc64, MatchesTheStandardCheckValue) {
  EXPECT_EQ(util::crc64("123456789", 9), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64, EmptyAndSingleByteInputs) {
  EXPECT_EQ(util::crc64("", 0), 0x0000000000000000ULL);
  // One zero byte must differ from empty input (length is encoded by the
  // shifting, not by an explicit field).
  const unsigned char zero = 0;
  EXPECT_NE(util::crc64(&zero, 1), util::crc64(&zero, 0));
}

// Every internal path — the byte/8-byte tails, the slice-by-16 table loop,
// and the carry-less-multiply folding kernel that takes over at >= 64 bytes
// — must agree with the bit-at-a-time polynomial definition at every
// length that straddles their boundaries.
TEST(Crc64, AllLengthsMatchTheBitwiseReference) {
  const std::uint64_t poly = 0xC96C5795D7870F42ULL;  // reflected CRC-64/XZ
  std::vector<unsigned char> buf(1024);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>((i * 2654435761u) >> 13);
  }
  auto reference = [&](std::size_t n) {
    std::uint64_t crc = ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      crc ^= buf[i];
      for (int b = 0; b < 8; ++b) crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
    }
    return ~crc;
  };
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                              std::size_t{15}, std::size_t{16}, std::size_t{17},
                              std::size_t{63}, std::size_t{64}, std::size_t{65},
                              std::size_t{127}, std::size_t{128}, std::size_t{129},
                              std::size_t{255}, std::size_t{1024}}) {
    EXPECT_EQ(util::crc64(buf.data(), n), reference(n)) << "length " << n;
  }
}

// Unaligned start addresses (the mmap loader hands the CRC a pointer at
// file offset 8) must not change the result for the same bytes.
TEST(Crc64, UnalignedBasePointerIsExact) {
  std::vector<unsigned char> buf(512 + 8);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 131u + 17u);
  }
  for (std::size_t shift = 0; shift < 8; ++shift) {
    std::vector<unsigned char> copy(buf.begin() + static_cast<std::ptrdiff_t>(shift),
                                    buf.begin() + static_cast<std::ptrdiff_t>(shift) + 512);
    EXPECT_EQ(util::crc64(buf.data() + shift, 512), util::crc64(copy.data(), 512))
        << "shift " << shift;
  }
}

}  // namespace
}  // namespace recoverd
