// The span-tracing flight recorder (obs/trace.hpp): level gating, ring
// overwrite semantics, multi-thread drains, and the Chrome trace-event
// serialisation contract (DESIGN.md §12).
//
// Tracing state is process-global, so every test starts from a clean
// disable_tracing() + reset_tracing() and restores it on exit.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace recoverd::obs {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() {
    disable_tracing();
    reset_tracing();
  }
  ~TraceFixture() override {
    disable_tracing();
    reset_tracing();
  }
};

TEST_F(TraceFixture, DisabledByDefaultAndSpansAreInactive) {
  EXPECT_EQ(trace_level(), TraceLevel::Off);
  TraceSpan span("trace_test.noop", TraceLevel::Decide);
  EXPECT_FALSE(span.active());
  span.arg("ignored", 1.0);
  span.end();
  EXPECT_TRUE(drain_trace().events.empty());
}

TEST_F(TraceFixture, RecordsSpansWithArgsWhenEnabled) {
  enable_tracing(TraceLevel::Decide);
  {
    TraceSpan outer("trace_test.outer", TraceLevel::Decide);
    ASSERT_TRUE(outer.active());
    outer.arg("depth", 3.0);
    outer.arg("jobs", 2.0);
    outer.arg("dropped-third-arg", 9.0);  // capacity is two
    TraceSpan inner("trace_test.inner", TraceLevel::Decide);
  }
  trace_instant("trace_test.instant", TraceLevel::Decide);
  disable_tracing();

  const TraceSnapshot snap = drain_trace();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.dropped, 0u);

  // Sorted by start time within the thread: outer began before inner, and
  // the instant fired last.
  const TraceEvent& outer = snap.events[0];
  const TraceEvent& inner = snap.events[1];
  const TraceEvent& instant = snap.events[2];
  EXPECT_STREQ(outer.name, "trace_test.outer");
  EXPECT_EQ(outer.num_args, 2);
  EXPECT_STREQ(outer.arg_names[0], "depth");
  EXPECT_EQ(outer.arg_values[0], 3.0);
  EXPECT_EQ(outer.arg_values[1], 2.0);
  EXPECT_STREQ(inner.name, "trace_test.inner");
  // Timestamp containment is what conveys nesting in the Chrome format.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_STREQ(instant.name, "trace_test.instant");
  EXPECT_TRUE(instant.instant);
  EXPECT_EQ(instant.dur_ns, 0u);
}

TEST_F(TraceFixture, DecideLevelSkipsFullSpans) {
  enable_tracing(TraceLevel::Decide);
  { TraceSpan span("trace_test.full_only", TraceLevel::Full); }
  { TraceSpan span("trace_test.decide", TraceLevel::Decide); }
  disable_tracing();
  const TraceSnapshot snap = drain_trace();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_STREQ(snap.events[0].name, "trace_test.decide");
}

TEST_F(TraceFixture, RingOverwritesOldestAndCountsDrops) {
  enable_tracing(TraceLevel::Full, 1024);  // the minimum ring size
  // Churn on a fresh thread so its buffer is allocated at the 1024-event
  // capacity (a thread that traced earlier keeps its original ring).
  std::thread churner([] {
    for (int i = 0; i < 1500; ++i) {
      TraceSpan span("trace_test.churn", TraceLevel::Full);
      span.arg("i", static_cast<double>(i));
    }
  });
  churner.join();
  disable_tracing();
  const TraceSnapshot snap = drain_trace();
  EXPECT_EQ(snap.events.size(), 1024u);
  EXPECT_EQ(snap.dropped, 1500u - 1024u);
  // A flight recorder keeps the *latest* window: the final event survives.
  EXPECT_EQ(snap.events.back().arg_values[0], 1499.0);
  EXPECT_EQ(snap.events.front().arg_values[0], static_cast<double>(1500 - 1024));
}

TEST_F(TraceFixture, DrainCoversExitedThreads) {
  enable_tracing(TraceLevel::Decide);
  std::thread worker([] { TraceSpan span("trace_test.worker", TraceLevel::Decide); });
  worker.join();
  { TraceSpan span("trace_test.main", TraceLevel::Decide); }
  disable_tracing();
  const TraceSnapshot snap = drain_trace();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_NE(snap.events[0].tid, snap.events[1].tid);
}

TEST_F(TraceFixture, ResetDropsBufferedEvents) {
  enable_tracing(TraceLevel::Decide);
  { TraceSpan span("trace_test.gone", TraceLevel::Decide); }
  disable_tracing();
  reset_tracing();
  EXPECT_TRUE(drain_trace().events.empty());
  EXPECT_EQ(drain_trace().dropped, 0u);
}

TEST_F(TraceFixture, ParseTraceLevelRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_trace_level("off"), TraceLevel::Off);
  EXPECT_EQ(parse_trace_level("decide"), TraceLevel::Decide);
  EXPECT_EQ(parse_trace_level("full"), TraceLevel::Full);
  EXPECT_STREQ(trace_level_name(TraceLevel::Full), "full");
  EXPECT_THROW(parse_trace_level("verbose"), PreconditionError);
}

TEST_F(TraceFixture, ChromeTraceJsonIsWellFormed) {
  enable_tracing(TraceLevel::Decide);
  {
    TraceSpan span("trace_test.chrome", TraceLevel::Decide);
    span.arg("count", 7.0);
  }
  trace_instant("trace_test.mark", TraceLevel::Decide);
  disable_tracing();

  std::ostringstream os;
  write_chrome_trace(os, drain_trace());
  const Json doc = Json::parse(os.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "trace_test.chrome");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_EQ(events[0].at("pid").as_number(), 1.0);
  EXPECT_GE(events[0].at("dur").as_number(), 0.0);
  EXPECT_EQ(events[0].at("args").at("count").as_number(), 7.0);
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  EXPECT_EQ(doc.at("otherData").at("schema").as_string(), "recoverd.trace.v1");
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_number(), 0.0);
}

TEST_F(TraceFixture, ChromeTraceEscapesAwkwardNames) {
  enable_tracing(TraceLevel::Decide);
  { TraceSpan span("weird \"name\"\\with\tescapes", TraceLevel::Decide); }
  disable_tracing();
  std::ostringstream os;
  write_chrome_trace(os, drain_trace());
  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("traceEvents").as_array()[0].at("name").as_string(),
            "weird \"name\"\\with\tescapes");
}

TEST_F(TraceFixture, WriteTraceFileDisablesAndPersists) {
  const std::string path = ::testing::TempDir() + "recoverd_trace_test.json";
  enable_tracing(TraceLevel::Decide);
  { TraceSpan span("trace_test.file", TraceLevel::Decide); }
  write_trace_file(path);
  EXPECT_EQ(trace_level(), TraceLevel::Off);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST_F(TraceFixture, WriteTraceFileThrowsOnUnopenablePath) {
  EXPECT_THROW(write_trace_file("/nonexistent-dir/trace.json"), ModelError);
}

}  // namespace
}  // namespace recoverd::obs
