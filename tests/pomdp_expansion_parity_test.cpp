// Parity suite for the iterative ExpansionEngine: on randomized recovery
// POMDPs the engine (and the bellman_* wrappers now built on it) must
// reproduce the frozen recursive reference in tests/reference_bellman.hpp
// BIT FOR BIT — same FP operation order, same tie-breaks, same pruning and
// renormalisation — across depths, branch floors, betas and action masks.
#include "pomdp/expansion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "pomdp/bellman.hpp"
#include "pomdp/belief.hpp"
#include "reference_bellman.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

// Random but valid recovery POMDP: state 0 is the goal, action 0 always
// repairs downward (Condition 1), observation rows are dense so branch
// floors actually prune.
Pomdp make_random_pomdp(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_states = 3 + rng.uniform_index(5);   // 3..7
  const std::size_t num_actions = 2 + rng.uniform_index(3);  // 2..4
  const std::size_t num_obs = 2 + rng.uniform_index(4);      // 2..5

  PomdpBuilder b;
  for (StateId s = 0; s < num_states; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -rng.uniform(0.05, 1.0));
  }
  b.mark_goal(0);
  for (ActionId a = 0; a < num_actions; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    b.add_action(name, rng.uniform(0.5, 10.0));
  }
  for (ObsId o = 0; o < num_obs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<StateId> targets;
      if (s > 0 && a == 0) targets.push_back(rng.uniform_index(s));
      targets.push_back(rng.uniform_index(num_states));
      if (rng.bernoulli(0.5)) targets.push_back(rng.uniform_index(num_states));
      std::vector<double> row(num_states, 0.0);
      double total = 0.0;
      std::vector<double> weights(targets.size());
      for (auto& w : weights) {
        w = rng.uniform(0.1, 1.0);
        total += w;
      }
      for (std::size_t i = 0; i < targets.size(); ++i) row[targets[i]] += weights[i] / total;
      for (StateId t = 0; t < num_states; ++t) {
        if (row[t] > 0.0) b.set_transition(s, a, t, row[t]);
      }
      if (rng.bernoulli(0.3)) b.set_impulse_reward(s, a, -rng.uniform(0.0, 2.0));
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<double> row(num_obs);
      double total = 0.0;
      for (auto& v : row) {
        // A heavy-tailed mix of large and tiny entries so that the floors
        // used below prune some branches but not all.
        v = rng.bernoulli(0.4) ? rng.uniform(0.5, 1.0) : rng.uniform(0.001, 0.05);
        total += v;
      }
      for (ObsId o = 0; o < num_obs; ++o) b.set_observation(s, a, o, row[o] / total);
    }
  }
  return b.build();
}

// Piecewise-linear leaf (max over random hyperplanes), shaped like the
// BoundSet evaluations the controllers use.
struct SawLeaf {
  std::vector<std::vector<double>> planes;

  static SawLeaf random(std::size_t num_states, Rng& rng) {
    SawLeaf leaf;
    const std::size_t n = 1 + rng.uniform_index(3);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> w(num_states);
      for (auto& v : w) v = -rng.uniform(0.0, 50.0);
      leaf.planes.push_back(std::move(w));
    }
    return leaf;
  }

  double operator()(std::span<const double> pi) const {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& w : planes) best = std::max(best, linalg::dot(w, pi));
    return best;
  }
};

struct ParityCase {
  Pomdp pomdp;
  Belief belief;
  SawLeaf leaf;
  int depth;
  double beta;
  ActionId skip;
  double floor;
};

ParityCase make_case(std::uint64_t seed) {
  ParityCase c{make_random_pomdp(seed), Belief::uniform(1), {}, 1, 1.0, kInvalidId, 0.0};
  Rng rng(seed ^ 0x5eedf00d);
  std::vector<double> pi(c.pomdp.num_states());
  for (auto& v : pi) v = rng.uniform(0.01, 1.0);
  c.belief = Belief(std::move(pi));  // Belief normalises
  c.leaf = SawLeaf::random(c.pomdp.num_states(), rng);
  c.depth = 1 + static_cast<int>(rng.uniform_index(3));              // 1..3
  c.beta = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.5, 1.0);
  c.skip = rng.bernoulli(0.3) ? ActionId{0} : kInvalidId;
  const double floors[] = {0.0, 1e-3, 5e-2, 0.2};
  c.floor = floors[rng.uniform_index(4)];
  return c;
}

class ExpansionParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpansionParityTest, WrapperValueMatchesReferenceBitwise) {
  const ParityCase c = make_case(GetParam());
  const std::function<double(const Belief&)> leaf = [&c](const Belief& b) {
    return c.leaf(b.probabilities());
  };
  const double ref =
      testref::ref_bellman_value(c.pomdp, c.belief, c.depth, leaf, c.beta, c.skip, c.floor);
  const double got = bellman_value(c.pomdp, c.belief, c.depth, leaf, c.beta, c.skip, c.floor);
  EXPECT_EQ(ref, got) << "seed=" << GetParam() << " depth=" << c.depth
                      << " floor=" << c.floor << " beta=" << c.beta;
}

TEST_P(ExpansionParityTest, WrapperActionValuesMatchReferenceBitwise) {
  const ParityCase c = make_case(GetParam());
  const std::function<double(const Belief&)> leaf = [&c](const Belief& b) {
    return c.leaf(b.probabilities());
  };
  const auto ref = testref::ref_bellman_action_values(c.pomdp, c.belief, c.depth, leaf,
                                                      c.beta, c.skip, c.floor);
  const auto got =
      bellman_action_values(c.pomdp, c.belief, c.depth, leaf, c.beta, c.skip, c.floor);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].action, got[i].action);
    EXPECT_EQ(ref[i].value, got[i].value)
        << "seed=" << GetParam() << " action=" << i << " depth=" << c.depth;
  }
}

TEST_P(ExpansionParityTest, EngineDirectSpanPathMatchesReferenceBitwise) {
  const ParityCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  ExpansionOptions opts;
  opts.beta = c.beta;
  opts.skip_action = c.skip;
  opts.branch_floor = c.floor;

  const std::function<double(const Belief&)> ref_leaf = [&c](const Belief& b) {
    return c.leaf(b.probabilities());
  };
  const double ref = testref::ref_bellman_value(c.pomdp, c.belief, c.depth, ref_leaf,
                                                c.beta, c.skip, c.floor);
  const double got = engine.value(c.belief.probabilities(), c.depth,
                                  SpanLeaf::of(c.leaf), opts);
  EXPECT_EQ(ref, got);

  std::vector<ActionValue> values;
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), opts,
                       values);
  const auto ref_values = testref::ref_bellman_action_values(c.pomdp, c.belief, c.depth,
                                                             ref_leaf, c.beta, c.skip,
                                                             c.floor);
  ASSERT_EQ(values.size(), ref_values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].value, ref_values[i].value) << "action " << i;
  }
}

TEST_P(ExpansionParityTest, RootParallelFanOutMatchesSerialBitwise) {
  const ParityCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  ExpansionOptions serial;
  serial.beta = c.beta;
  serial.skip_action = c.skip;
  serial.branch_floor = c.floor;
  ExpansionOptions fanout = serial;
  fanout.root_jobs = 3;

  std::vector<ActionValue> serial_values;
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), serial,
                       serial_values);
  std::vector<ActionValue> parallel_values;
  engine.action_values(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), fanout,
                       parallel_values);
  ASSERT_EQ(serial_values.size(), parallel_values.size());
  for (std::size_t i = 0; i < serial_values.size(); ++i) {
    EXPECT_EQ(serial_values[i].action, parallel_values[i].action);
    EXPECT_EQ(serial_values[i].value, parallel_values[i].value) << "action " << i;
  }

  const ActionValue serial_best =
      engine.best_action(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), serial);
  const ActionValue parallel_best =
      engine.best_action(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), fanout);
  EXPECT_EQ(serial_best.action, parallel_best.action);
  EXPECT_EQ(serial_best.value, parallel_best.value);
}

TEST_P(ExpansionParityTest, BestActionTieBreakMatchesWrapper) {
  const ParityCase c = make_case(GetParam());
  const std::function<double(const Belief&)> leaf = [&c](const Belief& b) {
    return c.leaf(b.probabilities());
  };
  const ActionValue via_wrapper = bellman_best_action(c.pomdp, c.belief, c.depth, leaf,
                                                      c.beta, c.skip, c.floor);
  ExpansionEngine engine(c.pomdp);
  ExpansionOptions opts;
  opts.beta = c.beta;
  opts.skip_action = c.skip;
  opts.branch_floor = c.floor;
  const ActionValue via_engine =
      engine.best_action(c.belief.probabilities(), c.depth, SpanLeaf::of(c.leaf), opts);
  EXPECT_EQ(via_wrapper.action, via_engine.action);
  EXPECT_EQ(via_wrapper.value, via_engine.value);
}

// 120 seeds x 3 sampled configurations each (depth, beta, mask, floor all
// derived from the seed) comfortably exceeds the "100 randomized models"
// acceptance bar.
INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionParityTest,
                         ::testing::Range<std::uint64_t>(1, 121));

TEST(ExpansionEngine, RebindSwitchesModels) {
  const Pomdp p1 = make_random_pomdp(1001);
  const Pomdp p2 = make_random_pomdp(2002);
  ExpansionEngine engine(p1);
  const SawLeaf leaf{{std::vector<double>(p1.num_states(), -1.0)}};

  const Belief b1 = Belief::uniform(p1.num_states());
  const double v1 = engine.value(b1.probabilities(), 1, SpanLeaf::of(leaf), {});
  EXPECT_TRUE(std::isfinite(v1));

  engine.rebind(p2);
  const SawLeaf leaf2{{std::vector<double>(p2.num_states(), -1.0)}};
  const Belief b2 = Belief::uniform(p2.num_states());
  const double v2 = engine.value(b2.probabilities(), 2, SpanLeaf::of(leaf2), {});
  EXPECT_TRUE(std::isfinite(v2));
}

TEST(ExpansionEngine, ArenaGrowsWithDepthAndIsReused) {
  const Pomdp p = make_random_pomdp(77);
  ExpansionEngine engine(p);
  const SawLeaf leaf{{std::vector<double>(p.num_states(), -2.0)}};
  const Belief b = Belief::uniform(p.num_states());

  (void)engine.value(b.probabilities(), 1, SpanLeaf::of(leaf), {});
  const std::size_t after_d1 = engine.arena_bytes();
  EXPECT_GT(after_d1, 0u);
  (void)engine.value(b.probabilities(), 3, SpanLeaf::of(leaf), {});
  const std::size_t after_d3 = engine.arena_bytes();
  EXPECT_GE(after_d3, after_d1);
  // Re-running the deep expansion must not grow the arena further.
  (void)engine.value(b.probabilities(), 3, SpanLeaf::of(leaf), {});
  EXPECT_EQ(engine.arena_bytes(), after_d3);
}

}  // namespace
}  // namespace recoverd
