// Exactness suite for the batch-first engine entry points (DESIGN.md §13):
// on randomized recovery POMDPs, update_batch() and action_values_batch() /
// decide_batch() must reproduce the single-belief walk BIT FOR BIT — same
// posterior bits, same values, same chosen actions — for every batch
// composition (sizes 1/7/64 with duplicated lanes), SIMD mode, memo
// setting, and root_jobs fan-out. Batched lanes whose beliefs coincide are
// solved once (canonicalization), so the suite also pins the
// BatchExpansionStats accounting: classes + shared_hits == sessions.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/belief_batch.hpp"
#include "pomdp/expansion.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace recoverd {
namespace {

// Random but valid recovery POMDP (same generator as the memo suite):
// state 0 is the goal, action 0 always repairs downward, and the
// observation rows mix large and tiny entries so branch floors prune some
// branches but not all.
Pomdp make_random_pomdp(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_states = 3 + rng.uniform_index(5);   // 3..7
  const std::size_t num_actions = 2 + rng.uniform_index(3);  // 2..4
  const std::size_t num_obs = 2 + rng.uniform_index(4);      // 2..5

  PomdpBuilder b;
  for (StateId s = 0; s < num_states; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -rng.uniform(0.05, 1.0));
  }
  b.mark_goal(0);
  for (ActionId a = 0; a < num_actions; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    b.add_action(name, rng.uniform(0.5, 10.0));
  }
  for (ObsId o = 0; o < num_obs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<StateId> targets;
      if (s > 0 && a == 0) targets.push_back(rng.uniform_index(s));
      targets.push_back(rng.uniform_index(num_states));
      if (rng.bernoulli(0.5)) targets.push_back(rng.uniform_index(num_states));
      std::vector<double> row(num_states, 0.0);
      double total = 0.0;
      std::vector<double> weights(targets.size());
      for (auto& w : weights) {
        w = rng.uniform(0.1, 1.0);
        total += w;
      }
      for (std::size_t i = 0; i < targets.size(); ++i) row[targets[i]] += weights[i] / total;
      for (StateId t = 0; t < num_states; ++t) {
        if (row[t] > 0.0) b.set_transition(s, a, t, row[t]);
      }
      if (rng.bernoulli(0.3)) b.set_impulse_reward(s, a, -rng.uniform(0.0, 2.0));
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<double> row(num_obs);
      double total = 0.0;
      for (auto& v : row) {
        v = rng.bernoulli(0.4) ? rng.uniform(0.5, 1.0) : rng.uniform(0.001, 0.05);
        total += v;
      }
      for (ObsId o = 0; o < num_obs; ++o) b.set_observation(s, a, o, row[o] / total);
    }
  }
  return b.build();
}

// Piecewise-linear leaf (max over random hyperplanes), shaped like the
// BoundSet evaluations the controllers use.
struct SawLeaf {
  std::vector<std::vector<double>> planes;

  static SawLeaf random(std::size_t num_states, Rng& rng) {
    SawLeaf leaf;
    const std::size_t n = 1 + rng.uniform_index(3);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> w(num_states);
      for (auto& v : w) v = -rng.uniform(0.0, 50.0);
      leaf.planes.push_back(std::move(w));
    }
    return leaf;
  }

  double operator()(std::span<const double> pi) const {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& w : planes) best = std::max(best, linalg::dot(w, pi));
    return best;
  }
};

struct BatchCase {
  Pomdp pomdp;
  std::vector<Belief> pool;  // distinct beliefs lanes draw from (with repeats)
  SawLeaf leaf;
  int depth;
  double floor;
};

constexpr std::size_t kPoolSize = 5;

BatchCase make_case(std::uint64_t seed) {
  BatchCase c{make_random_pomdp(seed), {}, {}, 1, 0.0};
  Rng rng(seed ^ 0x5eedba7c);
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    std::vector<double> pi(c.pomdp.num_states());
    for (auto& v : pi) v = rng.uniform(0.01, 1.0);
    c.pool.emplace_back(std::move(pi));  // Belief normalises
  }
  c.leaf = SawLeaf::random(c.pomdp.num_states(), rng);
  c.depth = 1 + static_cast<int>(rng.uniform_index(2));  // 1..2
  const double floors[] = {0.0, 1e-3, 5e-2};
  c.floor = floors[rng.uniform_index(3)];
  return c;
}

// Lane L draws pool[?] pseudo-randomly, so any batch larger than the pool
// necessarily duplicates beliefs across lanes (the canonicalization case).
BeliefBatch make_batch(const BatchCase& c, std::size_t lanes, std::uint64_t salt) {
  Rng rng(salt);
  BeliefBatch batch(c.pomdp.num_states());
  batch.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    batch.push_back(c.pool[rng.uniform_index(c.pool.size())], lane);
  }
  return batch;
}

ExpansionOptions base_options(const BatchCase& c, bool memo = true, int root_jobs = 1) {
  ExpansionOptions opts;
  opts.branch_floor = c.floor;
  opts.memo = memo;
  opts.root_jobs = root_jobs;
  return opts;
}

// Restores the default kernel selection no matter how a test exits, so a
// failing scalar-mode expectation can't leak into later suites.
struct SimdModeGuard {
  ~SimdModeGuard() { simd::configure("auto"); }
};

class BatchParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchParityTest, UpdateBatchMatchesUpdateBeliefBitwise) {
  const BatchCase c = make_case(GetParam());
  const std::size_t lanes = 16;
  BeliefBatch batch = make_batch(c, lanes, GetParam() ^ 0xabc);
  std::vector<std::vector<double>> before(lanes, std::vector<double>(c.pomdp.num_states()));
  for (std::size_t lane = 0; lane < lanes; ++lane) batch.copy_lane(lane, before[lane]);

  Rng rng(GetParam() ^ 0xdef);
  std::vector<ActionId> actions(lanes);
  std::vector<ObsId> observations(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    actions[lane] = static_cast<ActionId>(rng.uniform_index(c.pomdp.num_actions()));
    observations[lane] = static_cast<ObsId>(rng.uniform_index(c.pomdp.num_observations()));
  }
  // Lane 3 is a fleet-driver "just respawned" marker: skipped entirely.
  actions[3] = kInvalidId;

  BatchUpdateWorkspace ws;
  update_batch(c.pomdp, batch, actions, observations, ws);

  std::size_t expected_failures = 0;
  std::vector<double> got(c.pomdp.num_states());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    batch.copy_lane(lane, got);
    if (actions[lane] == kInvalidId) {
      EXPECT_EQ(ws.likelihood[lane], -1.0) << "skip lane " << lane;
      EXPECT_EQ(got, before[lane]) << "skip lane " << lane << " was touched";
      continue;
    }
    const Belief prior = Belief::from_normalized(before[lane]);
    const auto reference = update_belief(c.pomdp, prior, actions[lane], observations[lane]);
    if (!reference) {
      ++expected_failures;
      EXPECT_EQ(ws.likelihood[lane], 0.0) << "lane " << lane;
      EXPECT_EQ(got, before[lane]) << "zero-likelihood lane " << lane << " was touched";
      continue;
    }
    EXPECT_EQ(ws.likelihood[lane], reference->likelihood) << "lane " << lane;
    for (StateId s = 0; s < c.pomdp.num_states(); ++s) {
      EXPECT_EQ(got[s], reference->next[s])
          << "seed=" << GetParam() << " lane=" << lane << " state=" << s;
    }
  }
  EXPECT_EQ(ws.failures, expected_failures);
}

TEST_P(BatchParityTest, ActionValuesBatchMatchesLoopBitwise) {
  const BatchCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const ExpansionOptions opts = base_options(c);
  const std::size_t num_actions = c.pomdp.num_actions();

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    const BeliefBatch batch = make_batch(c, lanes, GetParam() ^ lanes);
    std::vector<ActionValue> batched;
    BatchExpansionStats stats;
    engine.action_values_batch(batch, c.depth, SpanLeaf::of(c.leaf), opts, batched, &stats);
    ASSERT_EQ(batched.size(), lanes * num_actions);
    EXPECT_EQ(stats.sessions, lanes);
    EXPECT_GE(stats.classes, 1u);
    EXPECT_LE(stats.classes, std::min(lanes, kPoolSize));
    EXPECT_EQ(stats.classes + stats.shared_hits, stats.sessions);

    std::vector<double> pi(c.pomdp.num_states());
    std::vector<ActionValue> looped;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      batch.copy_lane(lane, pi);
      engine.action_values(pi, c.depth, SpanLeaf::of(c.leaf), opts, looped);
      ASSERT_EQ(looped.size(), num_actions);
      for (std::size_t a = 0; a < num_actions; ++a) {
        EXPECT_EQ(batched[lane * num_actions + a].action, looped[a].action);
        EXPECT_EQ(batched[lane * num_actions + a].value, looped[a].value)
            << "seed=" << GetParam() << " lanes=" << lanes << " lane=" << lane
            << " action=" << a;
      }
    }
  }
}

TEST_P(BatchParityTest, DecideBatchMatchesBestActionBitwise) {
  const BatchCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const ExpansionOptions opts = base_options(c);
  const BeliefBatch batch = make_batch(c, 7, GetParam() ^ 0x77);

  std::vector<ActionValue> best;
  BatchExpansionStats stats;
  engine.decide_batch(batch, c.depth, SpanLeaf::of(c.leaf), opts, best, &stats);
  ASSERT_EQ(best.size(), batch.size());
  EXPECT_EQ(stats.classes + stats.shared_hits, stats.sessions);

  std::vector<double> pi(c.pomdp.num_states());
  for (std::size_t lane = 0; lane < batch.size(); ++lane) {
    batch.copy_lane(lane, pi);
    const ActionValue reference =
        engine.best_action(pi, c.depth, SpanLeaf::of(c.leaf), opts);
    EXPECT_EQ(best[lane].action, reference.action) << "lane " << lane;
    EXPECT_EQ(best[lane].value, reference.value) << "lane " << lane;
  }
}

TEST_P(BatchParityTest, BatchInvariantAcrossMemoAndRootJobs) {
  const BatchCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const BeliefBatch batch = make_batch(c, 7, GetParam() ^ 0x1234);

  std::vector<ActionValue> reference;
  engine.action_values_batch(batch, c.depth, SpanLeaf::of(c.leaf), base_options(c),
                             reference);

  std::vector<ActionValue> memo_off;
  engine.action_values_batch(batch, c.depth, SpanLeaf::of(c.leaf),
                             base_options(c, /*memo=*/false), memo_off);

  std::vector<ActionValue> fanout;
  engine.action_values_batch(batch, c.depth, SpanLeaf::of(c.leaf),
                             base_options(c, /*memo=*/true, /*root_jobs=*/3), fanout);

  ASSERT_EQ(memo_off.size(), reference.size());
  ASSERT_EQ(fanout.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(memo_off[i].action, reference[i].action);
    EXPECT_EQ(memo_off[i].value, reference[i].value) << "memo off, entry " << i;
    EXPECT_EQ(fanout[i].action, reference[i].action);
    EXPECT_EQ(fanout[i].value, reference[i].value) << "root_jobs=3, entry " << i;
  }
}

TEST_P(BatchParityTest, SimdScalarMatchesAutoBitwise) {
  const BatchCase c = make_case(GetParam());
  const std::size_t lanes = 7;
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<ActionId> actions(lanes);
  std::vector<ObsId> observations(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    actions[lane] = static_cast<ActionId>(rng.uniform_index(c.pomdp.num_actions()));
    observations[lane] = static_cast<ObsId>(rng.uniform_index(c.pomdp.num_observations()));
  }

  // One full pass (expansion + Bayes update) per kernel mode.
  const auto run = [&](std::vector<ActionValue>& values, BeliefBatch& batch) {
    ExpansionEngine engine(c.pomdp);
    engine.action_values_batch(batch, c.depth, SpanLeaf::of(c.leaf), base_options(c),
                               values);
    BatchUpdateWorkspace ws;
    update_batch(c.pomdp, batch, actions, observations, ws);
  };

  SimdModeGuard guard;
  simd::configure("scalar");
  BeliefBatch scalar_batch = make_batch(c, lanes, GetParam() ^ 0x51);
  std::vector<ActionValue> scalar_values;
  run(scalar_values, scalar_batch);

  simd::configure("auto");
  BeliefBatch auto_batch = make_batch(c, lanes, GetParam() ^ 0x51);
  std::vector<ActionValue> auto_values;
  run(auto_values, auto_batch);

  ASSERT_EQ(scalar_values.size(), auto_values.size());
  for (std::size_t i = 0; i < scalar_values.size(); ++i) {
    EXPECT_EQ(scalar_values[i].action, auto_values[i].action);
    EXPECT_EQ(scalar_values[i].value, auto_values[i].value) << "entry " << i;
  }
  std::vector<double> scalar_pi(c.pomdp.num_states());
  std::vector<double> auto_pi(c.pomdp.num_states());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    scalar_batch.copy_lane(lane, scalar_pi);
    auto_batch.copy_lane(lane, auto_pi);
    EXPECT_EQ(scalar_pi, auto_pi) << "posterior bits diverged, lane " << lane;
  }
}

// 120 seeds x the 5 tests above, with depth / floor / batch composition all
// derived from the seed — past the "100 randomized models" acceptance bar,
// every comparison EXPECT_EQ (bitwise).
INSTANTIATE_TEST_SUITE_P(Seeds, BatchParityTest,
                         ::testing::Range<std::uint64_t>(1, 121));

TEST(BatchContainerTest, PushSwapRemoveAndStrideInvariants) {
  BeliefBatch batch(3);
  EXPECT_TRUE(batch.empty());
  batch.push_back(Belief::point(3, 1), 10);
  batch.push_back(Belief::uniform(3), 11);
  batch.push_back(Belief::point(3, 2), 12);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.lane_stride() % 8, 0u);
  EXPECT_EQ(batch.session_id(1), 11u);
  EXPECT_EQ(batch.at(0, 1), 1.0);

  // State rows must start 64-byte aligned — the AVX2 kernel contract.
  for (StateId s = 0; s < 3; ++s) {
    const auto row = batch.state_lanes(s);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(row.data()) % 64, 0u);
  }

  batch.swap_remove(0);  // last lane (session 12) moves into slot 0
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.session_id(0), 12u);
  EXPECT_EQ(batch.at(0, 2), 1.0);
  EXPECT_EQ(batch.session_id(1), 11u);
}

TEST(BatchContainerTest, AssignAndCopyLaneAreVerbatim) {
  BeliefBatch batch(4);
  batch.push_back(Belief::uniform(4), 0);
  // Deliberately unnormalised: assign_lane must copy bits verbatim, exactly
  // like Belief::assign_normalized (no hidden renormalisation).
  const std::vector<double> raw = {0.5, 0.25, 0.125, 0.0625};
  batch.assign_lane(0, raw);
  std::vector<double> out(4);
  batch.copy_lane(0, out);
  EXPECT_EQ(out, raw);
}

}  // namespace
}  // namespace recoverd
