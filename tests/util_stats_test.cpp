#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Unbiased sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, first, second;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 10.0);
    whole.add(x);
    (i < 400 ? first : second).add(x);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), whole.count());
  EXPECT_NEAR(first.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(first.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(first.min(), whole.min());
  EXPECT_DOUBLE_EQ(first.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, MergeBothEmptyStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, SingletonMergeChainMatchesSequentialAddExactly) {
  // The parallel experiment reducer folds per-episode singletons into the
  // total in episode order. The mean/sum/min/max/count of that chain must
  // be BITWISE equal to sequential add() — a singleton merge updates the
  // mean with the same delta/n expression Welford uses — which is what lets
  // run_experiment(jobs=N) reproduce its own jobs=1 aggregates exactly.
  Rng rng(17);
  RunningStats sequential, chained;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1e3, 1e3);
    sequential.add(x);
    RunningStats one;
    one.add(x);
    chained.merge(one);
  }
  EXPECT_EQ(chained.count(), sequential.count());
  EXPECT_EQ(chained.mean(), sequential.mean());
  EXPECT_EQ(chained.sum(), sequential.sum());
  EXPECT_EQ(chained.min(), sequential.min());
  EXPECT_EQ(chained.max(), sequential.max());
  // The variance recurrences differ in rounding only.
  EXPECT_NEAR(chained.variance(), sequential.variance(),
              1e-9 * (1.0 + sequential.variance()));
}

TEST(RunningStats, SingletonMergeChainIsSelfConsistent) {
  // Two identical singleton-merge chains agree bitwise on everything,
  // including m2: the reduction is deterministic, not merely close.
  Rng rng(23);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.uniform(-5.0, 5.0);
  RunningStats first, second;
  for (const double x : xs) {
    RunningStats one;
    one.add(x);
    first.merge(one);
  }
  for (const double x : xs) {
    RunningStats one;
    one.add(x);
    second.merge(one);
  }
  EXPECT_EQ(first.count(), second.count());
  EXPECT_EQ(first.mean(), second.mean());
  EXPECT_EQ(first.variance(), second.variance());
}

TEST(RunningStats, CiShrinksWithSamples) {
  Rng rng(9);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(21);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace recoverd
