#include "bounds/ra_bound.hpp"

#include <gtest/gtest.h>

#include "bounds/comparison_bounds.hpp"
#include "bounds/upper_bound.hpp"
#include "linalg/vector_ops.hpp"
#include "models/two_server.hpp"
#include "pomdp/bellman.hpp"
#include "pomdp/conditions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::bounds {
namespace {

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

TEST(RaBound, HandComputedValuesWithNotification) {
  // Fig. 2(a) chain: V(Null)=0 (absorbing), and for the fault states
  //   3V = (-0.5 + 0) + (-1 + V) + (-0.5 + V)  =>  V = -2.
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const auto ra = compute_ra_bound(p.mdp());
  ASSERT_TRUE(ra.converged());
  EXPECT_NEAR(ra.values[ids.null_state], 0.0, 1e-8);
  EXPECT_NEAR(ra.values[ids.fault_a], -2.0, 1e-8);
  EXPECT_NEAR(ra.values[ids.fault_b], -2.0, 1e-8);
}

TEST(RaBound, HandComputedValuesWithTerminate) {
  // Fig. 2(b) chain with t_op = 40:
  //   V(sT) = 0
  //   4V(Null) = -1 + 3V(Null)          => V(Null) = -1
  //   4V(Fa) = -2 - 0.5·t_op + V(Null) + 2V(Fa) => V(Fa) = -1.5 - 0.25·t_op
  const double t_op = 40.0;
  const Pomdp p = models::make_two_server_without_notification(t_op);
  const auto ids = models::two_server_ids(p);
  const auto ra = compute_ra_bound(p.mdp());
  ASSERT_TRUE(ra.converged());
  EXPECT_NEAR(ra.values[p.terminate_state()], 0.0, 1e-8);
  EXPECT_NEAR(ra.values[ids.null_state], -1.0, 1e-8);
  EXPECT_NEAR(ra.values[ids.fault_a], -1.5 - 0.25 * t_op, 1e-7);
  EXPECT_NEAR(ra.values[ids.fault_b], -1.5 - 0.25 * t_op, 1e-7);
}

TEST(RaBound, DivergesOnUntransformedModel) {
  // The untransformed model keeps nonzero restart costs in the recurrent
  // Null state, so the random-action chain accrues cost forever (§3.1).
  const Pomdp p = models::make_two_server();
  const auto ra = compute_ra_bound(p.mdp());
  EXPECT_FALSE(ra.converged());
}

TEST(RaBound, BelowMdpOptimalValueStatewise) {
  // Mean-vs-max: the random-action value can never exceed the optimal value.
  for (const Pomdp& p : {models::make_two_server_with_notification(),
                         models::make_two_server_without_notification(40.0)}) {
    const auto ra = compute_ra_bound(p.mdp());
    const auto qmdp = compute_qmdp_bound(p.mdp());
    ASSERT_TRUE(ra.converged());
    ASSERT_TRUE(qmdp.converged());
    for (StateId s = 0; s < p.num_states(); ++s) {
      EXPECT_LE(ra.values[s], qmdp.values[s] + 1e-9) << p.mdp().state_name(s);
    }
  }
}

TEST(RaBound, SatisfiesLpMonotonicity) {
  // Property 1(b): with B = {RA-Bound}, V_B⁻(π) ≤ (L_p V_B⁻)(π) everywhere.
  // This is the executable core of Lemma 3.1.
  Rng rng(42);
  for (const Pomdp& p : {models::make_two_server_with_notification(),
                         models::make_two_server_without_notification(40.0)}) {
    const BoundSet set = make_ra_bound_set(p.mdp());
    const LeafEvaluator leaf = [&](const Belief& b) {
      return set.evaluate(b.probabilities());
    };
    for (int trial = 0; trial < 50; ++trial) {
      const Belief pi = random_belief(p.num_states(), rng);
      const double v = set.evaluate(pi.probabilities());
      const double lp_v = apply_lp(p, pi, leaf);
      EXPECT_LE(v, lp_v + 1e-9);
    }
  }
}

TEST(RaBound, BelowFiniteHorizonUpperBounds) {
  // V_d(π) with zero leaves upper-bounds V*_p(π) for every depth, so the
  // RA-Bound must stay below each of them (Theorem 3.1 consequence).
  Rng rng(7);
  const Pomdp p = models::make_two_server_with_notification();
  const BoundSet set = make_ra_bound_set(p.mdp());
  const LeafEvaluator zero = [](const Belief&) { return 0.0; };
  for (int trial = 0; trial < 20; ++trial) {
    const Belief pi = random_belief(p.num_states(), rng);
    const double ra_value = set.evaluate(pi.probabilities());
    for (int depth = 0; depth <= 5; ++depth) {
      EXPECT_LE(ra_value, bellman_value(p, pi, depth, zero) + 1e-9);
    }
  }
}

TEST(RaBound, DiscountedVariantConvergesOnUntransformedModel) {
  const Pomdp p = models::make_two_server();
  const auto ra = compute_ra_bound_discounted(p.mdp(), 0.9);
  ASSERT_TRUE(ra.converged());
  // Discounted values are finite and non-positive.
  for (double v : ra.values) {
    EXPECT_LE(v, 1e-12);
    EXPECT_GT(v, -1e6);
  }
  EXPECT_THROW(compute_ra_bound_discounted(p.mdp(), 1.0), PreconditionError);
}

TEST(RaBound, ChainOverloadMatchesMdpOverload) {
  // The Mdp entry point assembles a RandomActionChain internally; passing a
  // prebuilt chain must run the identical arithmetic — bitwise.
  const Pomdp p = models::make_two_server_with_notification();
  const RandomActionChain chain = build_random_action_chain(p.mdp());
  EXPECT_EQ(chain.num_actions, p.num_actions());
  EXPECT_EQ(chain.num_states(), p.num_states());

  const auto via_mdp = compute_ra_bound(p.mdp());
  const auto via_chain = compute_ra_bound(chain);
  ASSERT_TRUE(via_mdp.converged());
  ASSERT_TRUE(via_chain.converged());
  EXPECT_EQ(via_mdp.values, via_chain.values);
  EXPECT_EQ(via_mdp.iterations, via_chain.iterations);
}

TEST(RaBound, OneChainServesEveryDiscountFactor) {
  // β is applied at solve time (scc.scale), not folded into Q̄, so a single
  // assembled chain answers the undiscounted solve and every discounted
  // variant — each matching its assemble-per-call counterpart.
  const Pomdp p = models::make_two_server();
  const RandomActionChain chain = build_random_action_chain(p.mdp());

  // The untransformed model diverges undiscounted (§3.1)...
  EXPECT_FALSE(compute_ra_bound(chain).converged());
  // ...while every discounted solve off the same artifact converges.
  for (const double beta : {0.5, 0.9, 0.99}) {
    const auto via_chain = compute_ra_bound_discounted(chain, beta);
    const auto via_mdp = compute_ra_bound_discounted(p.mdp(), beta);
    ASSERT_TRUE(via_chain.converged()) << "beta " << beta;
    ASSERT_TRUE(via_mdp.converged()) << "beta " << beta;
    EXPECT_EQ(via_chain.values, via_mdp.values) << "beta " << beta;
  }
  EXPECT_THROW(compute_ra_bound_discounted(chain, 0.0), PreconditionError);
  EXPECT_THROW(compute_ra_bound_discounted(chain, 1.0), PreconditionError);
}

TEST(RaBound, MakeRaBoundSetAcceptsPrebuiltChain) {
  const Pomdp p = models::make_two_server_with_notification();
  const RandomActionChain chain = build_random_action_chain(p.mdp());
  const BoundSet from_chain = make_ra_bound_set(chain);
  const BoundSet from_mdp = make_ra_bound_set(p.mdp());
  ASSERT_EQ(from_chain.size(), from_mdp.size());
  EXPECT_EQ(from_chain.vector_at(0), from_mdp.vector_at(0));

  const Pomdp divergent = models::make_two_server();
  const RandomActionChain bad = build_random_action_chain(divergent.mdp());
  EXPECT_THROW(make_ra_bound_set(bad), ModelError);
}

TEST(RaBound, MakeRaBoundSetSeedsProtectedPlane) {
  const Pomdp p = models::make_two_server_with_notification();
  const BoundSet set = make_ra_bound_set(p.mdp());
  EXPECT_EQ(set.size(), 1u);
  const auto ra = compute_ra_bound(p.mdp());
  EXPECT_TRUE(linalg::approx_equal(set.vector_at(0), ra.values, 1e-12));
}

TEST(RaBound, MakeRaBoundSetThrowsOnDivergence) {
  const Pomdp p = models::make_two_server();
  EXPECT_THROW(make_ra_bound_set(p.mdp()), ModelError);
}

TEST(BiBound, DivergesOnRecoveryModelsBothVariants) {
  // §3.1: the worst action makes no progress but accrues cost, with or
  // without recovery notification.
  const Pomdp with = models::make_two_server_with_notification();
  EXPECT_FALSE(compute_bi_bound(with.mdp()).converged());
  const Pomdp without = models::make_two_server_without_notification(40.0);
  EXPECT_FALSE(compute_bi_bound(without.mdp()).converged());
}

TEST(BiBound, ConvergesWhenDiscountedAndBelowRa) {
  const Pomdp p = models::make_two_server_with_notification();
  ValueIterationOptions opts;
  opts.beta = 0.9;
  const auto bi = compute_bi_bound(p.mdp(), opts);
  ASSERT_TRUE(bi.converged());
  const auto ra = compute_ra_bound_discounted(p.mdp(), 0.9);
  ASSERT_TRUE(ra.converged());
  // Worst-action value is below the random-action value state by state.
  for (StateId s = 0; s < p.num_states(); ++s) {
    EXPECT_LE(bi.values[s], ra.values[s] + 1e-8);
  }
}

TEST(BlindPolicy, DivergesWithNotificationConvergesWithTerminate) {
  // §3.1: no single recovery action progresses in all states, so blind
  // bounds blow up on the notification variant; the terminate action makes
  // every blind bound finite on the terminate variant... but only aT's own
  // bound — the other blind policies still diverge. The *set* bound is
  // usable only when every vector is finite, which holds only through aT.
  const Pomdp with = models::make_two_server_with_notification();
  const auto blind_with = compute_blind_policy_bounds(with.mdp());
  EXPECT_FALSE(blind_with.all_converged());

  const Pomdp without = models::make_two_server_without_notification(40.0);
  const auto blind_without = compute_blind_policy_bounds(without.mdp());
  EXPECT_TRUE(blind_without.any_converged());
  const auto& at_bound = blind_without.per_action[without.terminate_action()];
  ASSERT_TRUE(at_bound.converged());
  const auto ids = models::two_server_ids(without);
  EXPECT_NEAR(at_bound.values[ids.fault_a], -0.5 * 40.0, 1e-8);
}

TEST(BlindPolicy, SetBoundOnFullyConvergentModel) {
  // With discounting every blind policy converges and the set-max bound is
  // defined; verify it is a valid lower bound vs the QMDP upper bound.
  const Pomdp p = models::make_two_server_with_notification();
  ValueIterationOptions opts;
  opts.beta = 0.8;
  const auto blind = compute_blind_policy_bounds(p.mdp(), opts);
  ASSERT_TRUE(blind.all_converged());
  const BoundSet set = blind.to_bound_set();
  EXPECT_GE(set.size(), 1u);
  const auto qmdp = compute_qmdp_bound(p.mdp(), opts);
  ASSERT_TRUE(qmdp.converged());
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Belief pi = random_belief(p.num_states(), rng);
    EXPECT_LE(set.evaluate(pi.probabilities()), qmdp.evaluate(pi.probabilities()) + 1e-9);
  }
}

TEST(UpperBound, QmdpDominatesRaEverywhere) {
  Rng rng(13);
  const Pomdp p = models::make_two_server_without_notification(40.0);
  const BoundSet ra_set = make_ra_bound_set(p.mdp());
  const auto qmdp = compute_qmdp_bound(p.mdp());
  ASSERT_TRUE(qmdp.converged());
  for (int trial = 0; trial < 30; ++trial) {
    const Belief pi = random_belief(p.num_states(), rng);
    const double lower = ra_set.evaluate(pi.probabilities());
    const double upper = qmdp.evaluate(pi.probabilities());
    EXPECT_LE(lower, upper + 1e-9);
    EXPECT_LE(upper, trivial_upper_bound() + 1e-9);
  }
}

TEST(RaBound, RecoveryModelConditionsHoldOnTransformedModels) {
  for (const Pomdp& p : {models::make_two_server_with_notification(),
                         models::make_two_server_without_notification(40.0)}) {
    // The POMDP overload treats the absorbing terminate state as a sink.
    EXPECT_TRUE(check_condition1(p).satisfied);
    EXPECT_TRUE(check_condition2(p.mdp()).satisfied);
  }
}

}  // namespace
}  // namespace recoverd::bounds
