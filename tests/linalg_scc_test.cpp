// Tests of the topology-aware solver stack: Tarjan SCC decomposition,
// SolvePlan level scheduling, and solve_fixed_point_scc against both the
// dense direct solve and the global Gauss–Seidel sweep.
#include "linalg/gauss_seidel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/level_schedule.hpp"
#include "linalg/scc.hpp"
#include "linalg/vector_ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::linalg {
namespace {

SparseMatrix random_substochastic(std::size_t n, double leak, Rng& rng) {
  SparseMatrixBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> w(n);
    double total = 0.0;
    for (auto& v : w) {
      v = rng.bernoulli(0.3) ? rng.uniform01() : 0.0;
      total += v;
    }
    if (total == 0.0) continue;
    const double scale = (1.0 - leak) / total;
    for (std::size_t j = 0; j < n; ++j) {
      if (w[j] > 0.0) b.add(i, j, w[j] * scale);
    }
  }
  return b.build();
}

DenseMatrix to_dense(const SparseMatrix& m) {
  DenseMatrix d(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (const auto& e : m.row(i)) d.at(i, e.col) = e.value;
  }
  return d;
}

TEST(TarjanScc, SingleCycleIsOneComponent) {
  // 0 → 1 → 2 → 0: one strongly connected component.
  SparseMatrixBuilder b(3, 3);
  b.add(0, 1, 0.5);
  b.add(1, 2, 0.5);
  b.add(2, 0, 0.5);
  const auto scc = tarjan_scc(b.build());
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
}

TEST(TarjanScc, DagIsAllSingletons) {
  // Strictly lower-triangular dependencies: every state its own component.
  SparseMatrixBuilder b(4, 4);
  b.add(1, 0, 0.5);
  b.add(2, 1, 0.5);
  b.add(3, 2, 0.3);
  b.add(3, 0, 0.2);
  const auto scc = tarjan_scc(b.build());
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(TarjanScc, SelfLoopStaysSingleton) {
  // A self-loop must not make the singleton "nontrivial".
  SparseMatrixBuilder b(2, 2);
  b.add(0, 0, 0.5);
  b.add(1, 0, 0.5);
  const auto scc = tarjan_scc(b.build());
  EXPECT_EQ(scc.num_components, 2u);
}

TEST(TarjanScc, TwoCyclesWithBridgeAreDependenciesFirst) {
  // {0,1} ⇄ each other, edge 1 → 2, {2,3} ⇄ each other. The downstream
  // component {2,3} must get the smaller id (dependencies-first).
  SparseMatrixBuilder b(4, 4);
  b.add(0, 1, 0.5);
  b.add(1, 0, 0.4);
  b.add(1, 2, 0.1);
  b.add(2, 3, 0.5);
  b.add(3, 2, 0.5);
  const auto scc = tarjan_scc(b.build());
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_LT(scc.component[2], scc.component[0]);
}

TEST(TarjanScc, CrossComponentEdgesPointToSmallerIds) {
  // The dependencies-first invariant on random graphs: every stored entry
  // (i, j) that crosses components satisfies component[j] < component[i].
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const SparseMatrix q = random_substochastic(40, 0.05, rng);
    const auto scc = tarjan_scc(q);
    for (std::size_t i = 0; i < q.rows(); ++i) {
      for (const auto& e : q.row(i)) {
        if (scc.component[i] != scc.component[e.col]) {
          EXPECT_LT(scc.component[e.col], scc.component[i]) << "trial " << trial;
        }
      }
    }
  }
}

TEST(SolvePlan, StructuralInvariantsHold) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const SparseMatrix q = random_substochastic(50, 0.05, rng);
    const SolvePlan plan = build_solve_plan(q);
    const std::size_t n = q.rows();

    ASSERT_EQ(plan.component.size(), n);
    ASSERT_EQ(plan.members.size(), n);
    ASSERT_EQ(plan.component_ptr.size(), plan.num_components + 1);
    ASSERT_EQ(plan.level_of.size(), plan.num_components);
    ASSERT_EQ(plan.level_components.size(), plan.num_components);

    // Members of each component: correct component id, ascending state id.
    std::size_t singletons = 0;
    std::size_t largest = 0;
    for (std::size_t k = 0; k < plan.num_components; ++k) {
      const auto members = plan.component_members(k);
      ASSERT_FALSE(members.empty());
      if (members.size() == 1) ++singletons;
      largest = std::max(largest, members.size());
      EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
      for (const std::uint32_t s : members) EXPECT_EQ(plan.component[s], k);
    }
    EXPECT_EQ(plan.num_singletons, singletons);
    EXPECT_EQ(plan.largest_component, largest);

    // Every cross-component dependency sits at a strictly lower level.
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& e : q.row(i)) {
        const std::uint32_t ki = plan.component[i];
        const std::uint32_t kj = plan.component[e.col];
        if (ki != kj) {
          EXPECT_LT(plan.level_of[kj], plan.level_of[ki]);
        }
      }
    }

    // Level lists partition the component ids, ascending within a level.
    std::vector<bool> seen(plan.num_components, false);
    for (std::size_t l = 0; l < plan.num_levels(); ++l) {
      const auto level = plan.level(l);
      EXPECT_TRUE(std::is_sorted(level.begin(), level.end()));
      for (const std::uint32_t k : level) {
        EXPECT_EQ(plan.level_of[k], l);
        EXPECT_FALSE(seen[k]);
        seen[k] = true;
      }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool v) { return v; }));
  }
}

TEST(SccSolve, MatchesDenseLuOnRandomSystems) {
  Rng rng(456);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 20;
    const SparseMatrix q = random_substochastic(n, 0.1, rng);
    std::vector<double> c(n);
    for (auto& v : c) v = rng.uniform(-5.0, 0.0);

    const auto scc = solve_fixed_point_scc(q, c);
    ASSERT_TRUE(scc.converged()) << scc.detail;

    const DenseMatrix a = DenseMatrix::identity(n).subtract(to_dense(q));
    const auto direct = LuFactorization(a).solve(c);
    EXPECT_TRUE(approx_equal(scc.x, direct, 1e-6)) << "trial " << trial;
  }
}

TEST(SccSolve, MatchesGlobalGaussSeidel) {
  Rng rng(789);
  for (int trial = 0; trial < 10; ++trial) {
    const SparseMatrix q = random_substochastic(30, 0.05, rng);
    std::vector<double> c(q.rows());
    for (auto& v : c) v = rng.uniform(-2.0, 0.0);
    const auto global = solve_fixed_point(q, c);
    const auto scc = solve_fixed_point_scc(q, c);
    ASSERT_TRUE(global.converged());
    ASSERT_TRUE(scc.converged()) << scc.detail;
    EXPECT_TRUE(approx_equal(global.x, scc.x, 1e-8)) << "trial " << trial;
  }
}

TEST(SccSolve, DagSolvesInOneSubstitutionPass) {
  // A pure DAG has only singleton components: every state is finished by one
  // closed-form substitution, so the reported sweep depth is exactly 1.
  SparseMatrixBuilder b(5, 5);
  for (std::size_t i = 1; i < 5; ++i) b.add(i, i - 1, 0.9);
  const std::vector<double> c{-1.0, -1.0, -1.0, -1.0, -1.0};
  const auto result = solve_fixed_point_scc(b.build(), c);
  ASSERT_TRUE(result.converged());
  EXPECT_EQ(result.iterations, 1u);
  // Exact forward substitution: x0 = -1, x_i = -1 + 0.9 x_{i-1}.
  double expected = -1.0;
  EXPECT_NEAR(result.x[0], expected, 1e-12);
  for (std::size_t i = 1; i < 5; ++i) {
    expected = -1.0 + 0.9 * expected;
    EXPECT_NEAR(result.x[i], expected, 1e-12);
  }
}

TEST(SccSolve, AbsorbingZeroRewardRowPinnedToZero) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 0.9);
  b.add(1, 1, 1.0);
  const std::vector<double> c{-2.0, 0.0};
  const auto result = solve_fixed_point_scc(b.build(), c);
  ASSERT_TRUE(result.converged());
  EXPECT_NEAR(result.x[1], 0.0, 1e-12);
  EXPECT_NEAR(result.x[0], -2.0, 1e-9);
}

TEST(SccSolve, PrepassNamesOffendingAbsorbingState) {
  // State 1 absorbs with nonzero source: the shared prepass must refuse the
  // system and its diagnostic must name the state.
  SparseMatrixBuilder b(3, 3);
  b.add(0, 1, 0.5);
  b.add(1, 1, 1.0);
  b.add(2, 0, 0.5);
  const std::vector<double> c{-1.0, -1.0, -1.0};
  const auto result = solve_fixed_point_scc(b.build(), c);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
  EXPECT_NE(result.detail.find("state 1"), std::string::npos) << result.detail;

  // The global solver runs the same prepass and must agree verbatim.
  const auto global = solve_fixed_point(b.build(), c);
  EXPECT_EQ(global.status, SolveStatus::Diverged);
  EXPECT_EQ(global.detail, result.detail);
}

TEST(SccSolve, ExpandingComponentReportsDivergenceWithLocation) {
  // An expanding 2-cycle downstream of a healthy singleton: the failure
  // detail must identify the component and its level.
  SparseMatrixBuilder b(3, 3);
  b.add(0, 1, 1.2);
  b.add(1, 0, 1.2);
  b.add(2, 0, 0.5);
  const std::vector<double> c{-1.0, -1.0, -1.0};
  const auto result = solve_fixed_point_scc(b.build(), c);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
  EXPECT_NE(result.detail.find("component"), std::string::npos) << result.detail;
  EXPECT_NE(result.detail.find("size 2"), std::string::npos) << result.detail;
}

TEST(SccSolve, StallWindowPropagatesToComponents) {
  // A recurrent zero-leak cycle inside one component drifts linearly; the
  // per-component stall detector must fire and the failure detail must carry
  // both the component location and the stall diagnosis.
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const std::vector<double> c{-1.0, -1.0};
  GaussSeidelOptions opts;
  opts.stall_window = 50;
  const auto result = solve_fixed_point_scc(b.build(), c, opts);
  EXPECT_EQ(result.status, SolveStatus::Diverged);
  EXPECT_LE(result.iterations, 2 * opts.stall_window);
  EXPECT_NE(result.detail.find("component"), std::string::npos) << result.detail;
  EXPECT_NE(result.detail.find("stalled"), std::string::npos) << result.detail;
}

TEST(SccSolve, ScaleMatchesExplicitlyDiscountedSystem) {
  // Solving x = c + β·Qx via scc.scale must equal solving against a matrix
  // with β folded into the entries — the contract that lets one assembled
  // chain serve every discount factor.
  Rng rng(31);
  const std::size_t n = 25;
  const double beta = 0.9;
  const SparseMatrix q = random_substochastic(n, 0.0, rng);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.uniform(-3.0, 0.0);

  SccSolveOptions scc;
  scc.scale = beta;
  const auto scaled = solve_fixed_point_scc(q, c, {}, scc);
  ASSERT_TRUE(scaled.converged()) << scaled.detail;

  SparseMatrixBuilder folded(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : q.row(i)) folded.add(i, e.col, beta * e.value);
  }
  const auto direct = solve_fixed_point(folded.build(), c);
  ASSERT_TRUE(direct.converged());
  EXPECT_TRUE(approx_equal(scaled.x, direct.x, 1e-8));
}

TEST(SccSolve, ChunkedPathMatchesBlockGaussSeidel) {
  // Forcing a tiny block_jacobi_threshold routes every nontrivial component
  // through the chunked solver; the answer must not change.
  Rng rng(64);
  for (int trial = 0; trial < 5; ++trial) {
    const SparseMatrix q = random_substochastic(40, 0.05, rng);
    std::vector<double> c(q.rows());
    for (auto& v : c) v = rng.uniform(-1.0, 0.0);

    const auto plain = solve_fixed_point_scc(q, c);
    SccSolveOptions chunked;
    chunked.block_jacobi_threshold = 2;
    const auto forced = solve_fixed_point_scc(q, c, {}, chunked);
    ASSERT_TRUE(plain.converged()) << plain.detail;
    ASSERT_TRUE(forced.converged()) << forced.detail;
    EXPECT_TRUE(approx_equal(plain.x, forced.x, 1e-8)) << "trial " << trial;
  }
}

TEST(SccSolve, PlanOverloadMatchesPlanBuildingOverload) {
  Rng rng(99);
  const SparseMatrix q = random_substochastic(30, 0.1, rng);
  std::vector<double> c(q.rows(), -1.0);
  const SolvePlan plan = build_solve_plan(q);
  const auto with_plan = solve_fixed_point_scc(q, c, {}, {}, plan);
  const auto without = solve_fixed_point_scc(q, c);
  ASSERT_TRUE(with_plan.converged());
  ASSERT_TRUE(without.converged());
  // Identical code path underneath: results are bitwise equal.
  EXPECT_EQ(with_plan.x, without.x);
  EXPECT_EQ(with_plan.iterations, without.iterations);
}

TEST(SccSolve, ValidatesInputs) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 0.5);
  const SparseMatrix q = b.build();
  const std::vector<double> c{-1.0, -1.0};

  SccSolveOptions bad;
  bad.scale = 0.0;
  EXPECT_THROW(solve_fixed_point_scc(q, c, {}, bad), PreconditionError);
  bad.scale = 1.5;
  EXPECT_THROW(solve_fixed_point_scc(q, c, {}, bad), PreconditionError);

  bad = {};
  bad.jobs = 0;
  EXPECT_THROW(solve_fixed_point_scc(q, c, {}, bad), PreconditionError);

  bad = {};
  bad.block_jacobi_threshold = 1;
  EXPECT_THROW(solve_fixed_point_scc(q, c, {}, bad), PreconditionError);

  GaussSeidelOptions opts;
  opts.relaxation = 2.5;
  EXPECT_THROW(solve_fixed_point_scc(q, c, opts), PreconditionError);

  // A plan built for a different matrix must be rejected.
  SparseMatrixBuilder other(3, 3);
  other.add(0, 1, 0.5);
  const SolvePlan mismatched = build_solve_plan(other.build());
  EXPECT_THROW(solve_fixed_point_scc(q, c, {}, {}, mismatched), PreconditionError);
}

}  // namespace
}  // namespace recoverd::linalg
