// Frozen copy of the recursive Max-Avg expansion that predates the
// iterative ExpansionEngine (src/pomdp/expansion.*). The parity suite
// checks the engine bit-for-bit against this reference, so keep it as a
// straight transcription of Eq. 2 with the library's exact conventions:
//   - actions ascending, folded with std::max (first action wins ties),
//   - observation branches in ascending ObsId order,
//   - kept_mass accumulated BEFORE each child expansion,
//   - value += (beta * gamma) * child, then value / kept_mass,
//   - fully pruned action => future value 0.
// Do not "modernise" this file; its value is that it never changes.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/expansion.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::testref {

struct RefContext {
  const Pomdp& pomdp;
  const std::function<double(const Belief&)>& leaf;
  double beta;
  ActionId skip_action;
  double branch_floor;
};

inline double ref_action_future_value(const RefContext& ctx, const Belief& belief,
                                      ActionId a, int depth);

inline double ref_expand(const RefContext& ctx, const Belief& belief, int depth) {
  if (depth <= 0) return ctx.leaf(belief);
  double best = -std::numeric_limits<double>::infinity();
  for (ActionId a = 0; a < ctx.pomdp.num_actions(); ++a) {
    if (a == ctx.skip_action) continue;
    const double value =
        linalg::dot(ctx.pomdp.mdp().rewards(a), belief.probabilities()) +
        ref_action_future_value(ctx, belief, a, depth);
    best = std::max(best, value);
  }
  return best;
}

inline double ref_action_future_value(const RefContext& ctx, const Belief& belief,
                                      ActionId a, int depth) {
  double value = 0.0;
  double kept_mass = 0.0;
  for (const auto& branch :
       belief_successors(ctx.pomdp, belief, a, ctx.branch_floor)) {
    kept_mass += branch.probability;
    value += ctx.beta * branch.probability * ref_expand(ctx, branch.posterior, depth - 1);
  }
  if (kept_mass <= 0.0) return 0.0;
  return value / kept_mass;
}

inline double ref_bellman_value(const Pomdp& pomdp, const Belief& belief, int depth,
                                const std::function<double(const Belief&)>& leaf,
                                double beta = 1.0, ActionId skip_action = kInvalidId,
                                double branch_floor = 0.0) {
  const RefContext ctx{pomdp, leaf, beta, skip_action, branch_floor};
  return ref_expand(ctx, belief, depth);
}

inline std::vector<ActionValue> ref_bellman_action_values(
    const Pomdp& pomdp, const Belief& belief, int depth,
    const std::function<double(const Belief&)>& leaf, double beta = 1.0,
    ActionId skip_action = kInvalidId, double branch_floor = 0.0) {
  const RefContext ctx{pomdp, leaf, beta, skip_action, branch_floor};
  std::vector<ActionValue> out;
  out.reserve(pomdp.num_actions());
  for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
    if (a == skip_action) {
      out.push_back({a, -std::numeric_limits<double>::infinity()});
      continue;
    }
    const double value = linalg::dot(pomdp.mdp().rewards(a), belief.probabilities()) +
                         ref_action_future_value(ctx, belief, a, depth);
    out.push_back({a, value});
  }
  return out;
}

}  // namespace recoverd::testref
