#include "controller/controller.hpp"

#include <gtest/gtest.h>

#include "controller/most_likely_controller.hpp"
#include "controller/oracle_controller.hpp"
#include "controller/random_controller.hpp"
#include "controller/repair.hpp"
#include "models/two_server.hpp"
#include "util/check.hpp"

namespace recoverd::controller {
namespace {

class TwoServerFixture : public ::testing::Test {
 protected:
  TwoServerFixture() : model_(models::make_two_server()), ids_(models::two_server_ids(model_)) {}
  Pomdp model_;
  models::TwoServerIds ids_;
};

TEST_F(TwoServerFixture, RepairTableFindsCheapestFix) {
  EXPECT_EQ(cheapest_fixing_action(model_.mdp(), ids_.fault_a), ids_.restart_a);
  EXPECT_EQ(cheapest_fixing_action(model_.mdp(), ids_.fault_b), ids_.restart_b);
  EXPECT_EQ(cheapest_fixing_action(model_.mdp(), ids_.null_state), kInvalidId);
  const auto table = build_repair_table(model_.mdp());
  EXPECT_EQ(table[ids_.fault_a], ids_.restart_a);
  EXPECT_EQ(table[ids_.null_state], kInvalidId);
}

TEST_F(TwoServerFixture, RepairTablePrefersCheaperAmongMultipleFixes) {
  // Add a second, more expensive fixing action and confirm it loses.
  PomdpBuilder b;
  const StateId good = b.add_state("good", 0.0);
  const StateId bad = b.add_state("bad", -1.0);
  b.mark_goal(good);
  const ActionId cheap = b.add_action("cheap-fix", 1.0);
  const ActionId pricey = b.add_action("pricey-fix", 10.0);
  for (ActionId a : {cheap, pricey}) {
    b.set_transition(bad, a, good, 1.0);
    b.set_transition(good, a, good, 1.0);
    b.set_rate_reward(good, a, 0.0);
  }
  const ObsId o = b.add_observation("none");
  b.set_observation_all_actions(good, o, 1.0);
  b.set_observation_all_actions(bad, o, 1.0);
  const Pomdp p = b.build();
  EXPECT_EQ(cheapest_fixing_action(p.mdp(), bad), cheap);
}

TEST_F(TwoServerFixture, BeliefTrackerFollowsBayesUpdates) {
  RandomController c(model_, Rng(1));
  const Belief start = Belief::uniform_over(
      model_.num_states(), std::vector<StateId>{ids_.fault_a, ids_.fault_b});
  c.begin_episode(start);
  EXPECT_DOUBLE_EQ(c.belief()[ids_.fault_a], 0.5);

  c.record(ids_.observe, ids_.alarm_a);
  // alarm(a) rules out Fault(b) entirely (it never emits alarm(a)).
  EXPECT_NEAR(c.belief()[ids_.fault_a], 1.0, 1e-12);
  EXPECT_EQ(c.mismatch_count(), 0u);
}

TEST_F(TwoServerFixture, BeliefTrackerSurvivesImpossibleObservation) {
  RandomController c(model_, Rng(1));
  c.begin_episode(Belief::point(model_.num_states(), ids_.fault_a));
  // alarm(b) is impossible from a point belief on Fault(a) under Observe.
  c.record(ids_.observe, ids_.alarm_b);
  EXPECT_EQ(c.mismatch_count(), 1u);
  EXPECT_NEAR(c.belief()[ids_.fault_a], 1.0, 1e-12);  // unchanged
}

TEST_F(TwoServerFixture, MostLikelyDiagnosesAndRepairs) {
  MostLikelyControllerOptions opts;
  opts.observe_action = ids_.observe;
  MostLikelyController c(model_, opts);
  c.begin_episode(Belief::uniform_over(model_.num_states(),
                                       std::vector<StateId>{ids_.fault_a, ids_.fault_b}));
  c.record(ids_.observe, ids_.alarm_a);  // diagnosis: Fault(a)
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids_.restart_a);

  // After a repair the controller wants fresh monitor data.
  c.record(ids_.restart_a, ids_.clear);
  const Decision d2 = c.decide();
  if (!d2.terminate) {
    EXPECT_EQ(d2.action, ids_.observe);
  }
}

TEST_F(TwoServerFixture, MostLikelyTerminatesAtThreshold) {
  MostLikelyControllerOptions opts;
  opts.observe_action = ids_.observe;
  opts.termination_probability = 0.99;
  MostLikelyController c(model_, opts);
  c.begin_episode(Belief::point(model_.num_states(), ids_.null_state));
  const Decision d = c.decide();
  EXPECT_TRUE(d.terminate);
}

TEST_F(TwoServerFixture, MostLikelyValidatesOptions) {
  MostLikelyControllerOptions opts;
  opts.observe_action = 99;
  EXPECT_THROW(MostLikelyController(model_, opts), PreconditionError);
  opts.observe_action = ids_.observe;
  opts.termination_probability = 1.0;
  EXPECT_THROW(MostLikelyController(model_, opts), PreconditionError);
}

TEST_F(TwoServerFixture, OracleFixesTrueFaultInOneAction) {
  StateId true_state = ids_.fault_b;
  OracleController c(model_, [&] { return true_state; });
  c.begin_episode(Belief::uniform(model_.num_states()));
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids_.restart_b);
  true_state = ids_.null_state;
  EXPECT_TRUE(c.decide().terminate);
}

TEST_F(TwoServerFixture, OracleRequiresProvider) {
  EXPECT_THROW(OracleController(model_, nullptr), PreconditionError);
}

TEST_F(TwoServerFixture, RandomControllerCoversAllActions) {
  RandomController c(model_, Rng(7));
  c.begin_episode(Belief::point(model_.num_states(), ids_.fault_a));
  std::vector<int> seen(model_.num_actions(), 0);
  for (int i = 0; i < 200; ++i) {
    const Decision d = c.decide();
    ASSERT_FALSE(d.terminate);  // no aT, belief not certain of goal
    ++seen[d.action];
  }
  for (ActionId a = 0; a < model_.num_actions(); ++a) EXPECT_GT(seen[a], 0);
}

TEST(RandomControllerTerminate, ChoosesTerminateOnTransformedModel) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  RandomController c(p, Rng(3));
  c.begin_episode(Belief::uniform(p.num_states()));
  bool saw_terminate = false;
  for (int i = 0; i < 200 && !saw_terminate; ++i) {
    const Decision d = c.decide();
    if (d.terminate) {
      EXPECT_EQ(d.action, p.terminate_action());
      saw_terminate = true;
    }
  }
  EXPECT_TRUE(saw_terminate);
}

}  // namespace
}  // namespace recoverd::controller
