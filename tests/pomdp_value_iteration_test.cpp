#include "pomdp/value_iteration.hpp"

#include <gtest/gtest.h>

#include "models/two_server.hpp"
#include "pomdp/transforms.hpp"
#include "util/check.hpp"

namespace recoverd {
namespace {

TEST(ValueIteration, OptimalValuesOnNotifiedTwoServer) {
  // With recovery notification and full observability, the optimal policy
  // restarts the faulty server immediately: V(Fault(x)) = -0.5, V(Null) = 0.
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  EXPECT_NEAR(vi.values[ids.null_state], 0.0, 1e-9);
  EXPECT_NEAR(vi.values[ids.fault_a], -0.5, 1e-9);
  EXPECT_NEAR(vi.values[ids.fault_b], -0.5, 1e-9);
  EXPECT_EQ(vi.policy[ids.fault_a], ids.restart_a);
  EXPECT_EQ(vi.policy[ids.fault_b], ids.restart_b);
}

TEST(ValueIteration, OptimalValuesOnTerminateTwoServer) {
  // Without notification, restarting the faulty server (-0.5) and then
  // terminating from Null (0) is optimal; terminating immediately from a
  // fault state costs 0.5 * t_op.
  const double t_op = 40.0;
  const Pomdp p = models::make_two_server_without_notification(t_op);
  const auto ids = models::two_server_ids(p);
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  EXPECT_NEAR(vi.values[ids.null_state], 0.0, 1e-9);
  EXPECT_NEAR(vi.values[ids.fault_a], -0.5, 1e-9);
  EXPECT_NEAR(vi.values[p.terminate_state()], 0.0, 1e-9);
  EXPECT_EQ(vi.policy[ids.fault_a], ids.restart_a);
}

TEST(ValueIteration, UntransformedUndiscountedModelHasZeroFixedPoint) {
  // The *untransformed* two-server model keeps Null's restart costs, but
  // Observe in Null is free, so value iteration still converges (optimal:
  // fix the fault, then Observe forever at 0 cost).
  const Pomdp p = models::make_two_server();
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  const auto ids = models::two_server_ids(p);
  EXPECT_NEAR(vi.values[ids.null_state], 0.0, 1e-9);
  EXPECT_NEAR(vi.values[ids.fault_a], -0.5, 1e-9);
}

TEST(ValueIteration, MinExtremumDivergesOnUndiscountedRecoveryModel) {
  // §3.1: the BI-POMDP construction (min instead of max) picks the worst
  // action, which loops in a fault state accruing -1 forever.
  const Pomdp p = models::make_two_server_with_notification();
  const auto vi = value_iteration(p.mdp(), {}, Extremum::Min);
  EXPECT_EQ(vi.status, linalg::SolveStatus::Diverged);
}

TEST(ValueIteration, MinExtremumConvergesWhenDiscounted) {
  const Pomdp p = models::make_two_server_with_notification();
  ValueIterationOptions opts;
  opts.beta = 0.9;
  const auto vi = value_iteration(p.mdp(), opts, Extremum::Min);
  ASSERT_TRUE(vi.converged());
  // Worst policy from Fault(a) loops restarting b forever: -1/(1-0.9) = -10.
  const auto ids = models::two_server_ids(p);
  EXPECT_NEAR(vi.values[ids.fault_a], -10.0, 1e-6);
}

TEST(ValueIteration, DiscountedValuesBelowUndiscountedMagnitude) {
  const Pomdp p = models::make_two_server_with_notification();
  ValueIterationOptions opts;
  opts.beta = 0.5;
  const auto discounted = value_iteration(p.mdp(), opts);
  const auto undiscounted = value_iteration(p.mdp());
  ASSERT_TRUE(discounted.converged());
  ASSERT_TRUE(undiscounted.converged());
  for (StateId s = 0; s < p.num_states(); ++s) {
    EXPECT_GE(discounted.values[s] + 1e-12, undiscounted.values[s]);
  }
}

TEST(BlindPolicy, SingleActionValueOnNotifiedModel) {
  // Blind "Restart(a)" policy: from Fault(a) one step (-0.5) reaches the
  // absorbing Null; from Fault(b) it loops at -1 per step => diverges.
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const auto blind = blind_policy_value(p.mdp(), ids.restart_a);
  EXPECT_EQ(blind.status, linalg::SolveStatus::Diverged);
}

TEST(BlindPolicy, ConvergesOnTerminateAction) {
  // In the terminate-transformed model the blind aT policy stops instantly:
  // value = termination reward, finite for every state (§3.1's observation
  // that the transform trivially repairs the blind-policy bound).
  const double t_op = 25.0;
  const Pomdp p = models::make_two_server_without_notification(t_op);
  const auto ids = models::two_server_ids(p);
  const auto blind = blind_policy_value(p.mdp(), p.terminate_action());
  ASSERT_TRUE(blind.converged());
  EXPECT_NEAR(blind.values[ids.null_state], 0.0, 1e-9);
  EXPECT_NEAR(blind.values[ids.fault_a], -0.5 * t_op, 1e-9);
}

TEST(BlindPolicy, DiscountedBlindValueIsFinite) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  ValueIterationOptions opts;
  opts.beta = 0.8;
  const auto blind = blind_policy_value(p.mdp(), ids.restart_b, opts);
  ASSERT_TRUE(blind.converged());
  // From Fault(a), always Restart(b): -1 each step: -1/(1-0.8) = -5.
  EXPECT_NEAR(blind.values[ids.fault_a], -5.0, 1e-6);
}

TEST(ValueIteration, RejectsBadOptions) {
  const Pomdp p = models::make_two_server();
  ValueIterationOptions opts;
  opts.beta = 1.5;
  EXPECT_THROW(value_iteration(p.mdp(), opts), PreconditionError);
  opts.beta = 1.0;
  opts.tolerance = 0.0;
  EXPECT_THROW(value_iteration(p.mdp(), opts), PreconditionError);
  EXPECT_THROW(blind_policy_value(p.mdp(), 99), PreconditionError);
}

}  // namespace
}  // namespace recoverd
