#include "controller/interval_controller.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "sim/experiment.hpp"
#include "util/check.hpp"

namespace recoverd::controller {
namespace {

class IntervalControllerTest : public ::testing::Test {
 protected:
  IntervalControllerTest()
      : base_(models::make_two_server()),
        recovery_(models::make_two_server_without_notification(3600.0)),
        ids_(models::two_server_ids(base_)),
        lower_(bounds::make_ra_bound_set(recovery_.mdp())),
        upper_(recovery_) {}

  Pomdp base_;
  Pomdp recovery_;
  models::TwoServerIds ids_;
  bounds::BoundSet lower_;
  bounds::SawtoothUpperBound upper_;
};

TEST_F(IntervalControllerTest, PicksCorrectRestartAtPointBelief) {
  IntervalController c(recovery_, lower_, upper_);
  c.begin_episode(Belief::point(recovery_.num_states(), ids_.fault_a));
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids_.restart_a);
}

TEST_F(IntervalControllerTest, GapIsNonNegativeAndShrinksWithRefinement) {
  IntervalController c(recovery_, lower_, upper_);
  const Belief pi = Belief::uniform_over(
      recovery_.num_states(), std::vector<StateId>{ids_.fault_a, ids_.fault_b});
  c.begin_episode(pi);
  (void)c.decide();
  const double first_gap = c.last_decision().gap();
  EXPECT_GE(first_gap, -1e-9);
  // Online improvement refines both bounds: the certified gap at the same
  // belief must not grow.
  c.begin_episode(pi);
  (void)c.decide();
  EXPECT_LE(c.last_decision().gap(), first_gap + 1e-9);
}

TEST_F(IntervalControllerTest, LowerNeverExceedsUpper) {
  IntervalController c(recovery_, lower_, upper_);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> raw(recovery_.num_states());
    for (auto& v : raw) v = rng.uniform01() + 1e-9;
    c.begin_episode(Belief(raw));
    (void)c.decide();
    EXPECT_LE(c.last_decision().lower, c.last_decision().upper + 1e-9);
  }
}

TEST_F(IntervalControllerTest, PrunesObviouslyBadActions) {
  // At a *certain* fault belief with a tight lower bound, terminating (cost
  // 0.5·t_op = 1800) must be prunable against restart (cost ≈ 0.5).
  IntervalController c(recovery_, lower_, upper_);
  const Belief pi = Belief::point(recovery_.num_states(), ids_.fault_a);
  c.begin_episode(pi);
  (void)c.decide();  // improves bounds at pi
  c.begin_episode(pi);
  (void)c.decide();
  EXPECT_GE(c.last_decision().actions_pruned, 1u);
}

TEST_F(IntervalControllerTest, TerminatesOnceRecovered) {
  IntervalController c(recovery_, lower_, upper_);
  c.begin_episode(Belief::point(recovery_.num_states(), ids_.null_state));
  // Refine bounds at Null a couple of times so both tie at 0.
  (void)c.decide();
  c.begin_episode(Belief::point(recovery_.num_states(), ids_.null_state));
  const Decision d = c.decide();
  EXPECT_TRUE(d.terminate);
}

TEST_F(IntervalControllerTest, FullEpisodesRecover) {
  IntervalControllerOptions opts;
  opts.branch_floor = 1e-2;
  IntervalController c(recovery_, lower_, upper_, opts);
  sim::FaultInjector injector({ids_.fault_a, ids_.fault_b});
  sim::EpisodeConfig config;
  config.observe_action = ids_.observe;
  config.fault_support = {ids_.fault_a, ids_.fault_b};
  const auto result = run_experiment(base_, c, injector, 100, 23, config);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
}

TEST(IntervalControllerEmn, RecoversZombieFaults) {
  const Pomdp base = models::make_emn_base();
  const Pomdp recovery = models::make_emn_recovery_model();
  const models::EmnIds ids = models::emn_ids(base);
  bounds::BoundSet lower = bounds::make_ra_bound_set(recovery.mdp());
  bounds::SawtoothUpperBound upper(recovery);
  IntervalControllerOptions opts;
  opts.branch_floor = 1e-2;
  IntervalController c(recovery, lower, upper, opts);

  std::vector<StateId> zombies(ids.topo.zombie_states.begin(),
                               ids.topo.zombie_states.end());
  sim::FaultInjector injector(zombies);
  sim::EpisodeConfig config;
  config.observe_action = ids.topo.observe_action;
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (!base.mdp().is_goal(s)) config.fault_support.push_back(s);
  }
  const auto result = sim::run_experiment(base, c, injector, 30, 29, config);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
}

TEST(IntervalControllerValidation, RejectsBadSetup) {
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  bounds::BoundSet empty(recovery.num_states());
  bounds::SawtoothUpperBound upper(recovery);
  EXPECT_THROW(IntervalController(recovery, empty, upper), PreconditionError);
  bounds::BoundSet ok = bounds::make_ra_bound_set(recovery.mdp());
  IntervalControllerOptions opts;
  opts.tree_depth = 0;
  EXPECT_THROW(IntervalController(recovery, ok, upper, opts), PreconditionError);
}

}  // namespace
}  // namespace recoverd::controller
