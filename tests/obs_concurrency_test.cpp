// Multithreaded smoke tests for the metrics registry: exact final tallies
// under contention (counters/gauges/histograms use atomics; registration
// takes the registry mutex).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace recoverd::obs {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 20000;

TEST(Concurrency, CounterAddsAreExact) {
  Counter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kOpsPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(Concurrency, GaugeAddsAreExact) {
  // fetch_add on integral-valued doubles is exact well below 2^53.
  Gauge g;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kOpsPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kOpsPerThread);
}

TEST(Concurrency, HistogramTalliesAreExact) {
  Histogram h({1.0, 2.0, 3.0});
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      // Each thread hits one bucket: thread t observes t + 0.5.
      const double sample = static_cast<double>(t) + 0.5;
      for (int i = 0; i < kOpsPerThread; ++i) h.observe(sample);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (std::size_t b = 0; b < h.buckets(); ++b) {
    EXPECT_EQ(h.bucket_count(b), static_cast<std::uint64_t>(kOpsPerThread)) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  // Sum of integral multiples of 0.5 is exact in double.
  const double per_thread_sums = 0.5 + 1.5 + 2.5 + 3.5;
  EXPECT_DOUBLE_EQ(h.sum(), per_thread_sums * kOpsPerThread);
}

TEST(Concurrency, RegistryInterningIsRaceFree) {
  MetricsRegistry reg;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // All threads intern the same instruments and hammer them; the
      // references they get must alias a single instance per name.
      Counter& shared = reg.counter("conc.shared");
      Histogram& hist = reg.histogram("conc.hist_ms", {1.0, 10.0});
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.add();
        hist.observe(0.5);
        if (i % 1000 == 0) reg.counter("conc.shared").add();  // re-lookup path
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * (kOpsPerThread + kOpsPerThread / 1000);
  EXPECT_EQ(reg.counter("conc.shared").value(), expected);
  EXPECT_EQ(reg.histogram("conc.hist_ms", {}).count(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(Concurrency, DistinctNamesRegisterConcurrently) {
  MetricsRegistry reg;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < 50; ++i) {
        reg.counter("conc.t" + std::to_string(t) + ".c" + std::to_string(i)).add();
        reg.gauge("conc.t" + std::to_string(t) + ".g" + std::to_string(i)).set(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), static_cast<std::size_t>(kThreads) * 50);
  EXPECT_EQ(snap.gauges.size(), static_cast<std::size_t>(kThreads) * 50);
  for (const auto& c : snap.counters) EXPECT_EQ(c.value, 1u);
}

}  // namespace
}  // namespace recoverd::obs
