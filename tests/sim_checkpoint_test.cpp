// Crash-safety suite (DESIGN.md §14): a fleet saved mid-run and restored
// into a fresh driver must replay the exact beliefs, actions, and episode
// tallies of the uninterrupted run (caches rebuild cold — only the
// classes/shared_hits work accounting may differ), writes must be atomic,
// and the checkpoint corruption matrix (truncation, bit flips, bad magic,
// version/model/options mismatches) must be rejected with an actionable
// error before any driver state is touched.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "models/emn.hpp"
#include "pomdp/belief.hpp"
#include "sim/fleet_driver.hpp"
#include "util/check.hpp"

namespace recoverd::sim {
namespace {

struct EmnFleet {
  Pomdp base;
  Pomdp recovery;
  models::EmnIds ids;
  FaultInjector injector;
  bounds::BoundSet set;

  EmnFleet()
      : base(models::make_emn_base()),
        recovery(models::make_emn_recovery_model()),
        ids(models::emn_ids(base)),
        injector(std::vector<StateId>(ids.topo.zombie_states.begin(),
                                      ids.topo.zombie_states.end())),
        set(bounds::make_ra_bound_set(recovery.mdp(), 32)) {
    controller::BootstrapOptions boot;
    boot.iterations = 4;
    boot.tree_depth = 2;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = 7;
    boot.branch_floor = 1e-2;
    controller::bootstrap_bounds(recovery, set,
                                 Belief::uniform(recovery.num_states()), boot);
  }
};

EmnFleet& emn() {
  static EmnFleet* fleet = new EmnFleet();
  return *fleet;
}

FleetOptions make_options(std::size_t sessions, FleetMode mode) {
  FleetOptions options;
  options.sessions = sessions;
  options.mode = mode;
  options.observe_action = emn().ids.topo.observe_action;
  options.tree_depth = 1;
  options.branch_floor = 1e-2;
  options.max_steps = 10000;
  return options;
}

FleetOptions make_resilient_options(std::size_t sessions, FleetMode mode) {
  FleetOptions options = make_options(sessions, mode);
  options.guard.enabled = true;
  options.guard.promote_after = 2;
  options.guard.livelock_window = 16;
  options.chaos.stall_rate = 0.3;
  options.chaos.stall_ms = 0.1;
  options.chaos.obs_corrupt_rate = 0.3;
  options.chaos.poison_rate = 0.3;
  options.tick_budget_decisions = sessions / 2;
  return options;
}

FleetDriver make_fleet(FleetOptions options, std::uint64_t seed = 41) {
  EmnFleet& f = emn();
  return FleetDriver(f.recovery, f.base, f.set, f.injector, seed, options);
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// Equality after a restore: everything except the classes/shared_hits work
// accounting, which a cold cache is allowed to redistribute.
void expect_resumed_equal(const FleetDriver& resumed, const FleetDriver& straight,
                          std::size_t tick) {
  ASSERT_EQ(resumed.sessions(), straight.sessions());
  const std::size_t num_states = resumed.beliefs().num_states();
  for (StateId s = 0; s < num_states; ++s) {
    const auto lanes_a = resumed.beliefs().state_lanes(s);
    const auto lanes_b = straight.beliefs().state_lanes(s);
    ASSERT_EQ(std::memcmp(lanes_a.data(), lanes_b.data(),
                          resumed.sessions() * sizeof(double)),
              0)
        << "belief bits diverged after restore at tick " << tick << ", state "
        << s;
  }
  const auto actions_a = resumed.last_actions();
  const auto actions_b = straight.last_actions();
  EXPECT_TRUE(std::equal(actions_a.begin(), actions_a.end(), actions_b.begin()))
      << "actions diverged after restore at tick " << tick;
  const auto stages_a = resumed.ladder_stages();
  const auto stages_b = straight.ladder_stages();
  EXPECT_TRUE(std::equal(stages_a.begin(), stages_a.end(), stages_b.begin()))
      << "ladder stages diverged after restore at tick " << tick;
  const FleetStats& sa = resumed.stats();
  const FleetStats& sb = straight.stats();
  EXPECT_EQ(sa.ticks, sb.ticks);
  EXPECT_EQ(sa.decisions, sb.decisions);
  EXPECT_EQ(sa.episodes_completed, sb.episodes_completed);
  EXPECT_EQ(sa.episodes_recovered, sb.episodes_recovered);
  EXPECT_EQ(sa.episodes_truncated, sb.episodes_truncated);
  EXPECT_EQ(sa.belief_mismatches, sb.belief_mismatches);
  EXPECT_EQ(sa.degraded_decides, sb.degraded_decides);
  EXPECT_EQ(sa.shed, sb.shed);
  EXPECT_EQ(sa.stalls_injected, sb.stalls_injected);
  EXPECT_EQ(sa.poisons_injected, sb.poisons_injected);
  EXPECT_EQ(sa.beliefs_repaired, sb.beliefs_repaired);
  EXPECT_EQ(sa.obs_corrupted, sb.obs_corrupted);
  EXPECT_EQ(sa.obs_invalid_rejected, sb.obs_invalid_rejected);
  EXPECT_EQ(sa.livelock_respawns, sb.livelock_respawns);
  EXPECT_EQ(sa.ladder_demotions, sb.ladder_demotions);
  EXPECT_EQ(sa.ladder_promotions, sb.ladder_promotions);
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Runs `fn`, requires it to throw ModelError, returns the message.
std::string model_error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ModelError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ModelError, got: " << e.what();
    return "";
  }
  ADD_FAILURE() << "expected ModelError, got no exception";
  return "";
}

// ---- round trips --------------------------------------------------------

TEST(CheckpointTest, RoundTripResumesBitwise) {
  const std::string path = temp_path("fleet_roundtrip.ckpt");
  FleetDriver straight = make_fleet(make_options(16, FleetMode::Batch));
  FleetDriver interrupted = make_fleet(make_options(16, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 4; ++tick) {
    straight.tick();
    interrupted.tick();
  }
  interrupted.save_checkpoint(path);

  FleetDriver resumed = make_fleet(make_options(16, FleetMode::Batch), 999);
  resumed.restore_checkpoint(path);
  for (std::size_t tick = 4; tick < 8; ++tick) {
    straight.tick();
    resumed.tick();
    expect_resumed_equal(resumed, straight, tick);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripWithGuardsChaosAndBudgetResumesBitwise) {
  const std::string path = temp_path("fleet_chaos_roundtrip.ckpt");
  FleetDriver straight = make_fleet(make_resilient_options(16, FleetMode::Batch));
  FleetDriver interrupted = make_fleet(make_resilient_options(16, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 5; ++tick) {
    straight.tick();
    interrupted.tick();
  }
  interrupted.save_checkpoint(path);

  FleetDriver resumed = make_fleet(make_resilient_options(16, FleetMode::Batch), 7);
  resumed.restore_checkpoint(path);
  for (std::size_t tick = 5; tick < 10; ++tick) {
    straight.tick();
    resumed.tick();
    expect_resumed_equal(resumed, straight, tick);
  }
  // The restored half must have replayed real chaos, not a clean fleet.
  EXPECT_GT(straight.stats().stalls_injected, 0u);
  EXPECT_GT(straight.stats().poisons_injected, 0u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RestoreCrossesFleetModes) {
  // mode/jobs/simd/memo/cache are excluded from the options hash on
  // purpose: the bitwise invariance contracts make a Batch checkpoint
  // meaningful to a Loop fleet (and vice versa).
  const std::string path = temp_path("fleet_crossmode.ckpt");
  FleetDriver batch = make_fleet(make_options(12, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 4; ++tick) batch.tick();
  batch.save_checkpoint(path);

  FleetDriver loop = make_fleet(make_options(12, FleetMode::Loop));
  loop.restore_checkpoint(path);
  for (std::size_t tick = 4; tick < 7; ++tick) {
    batch.tick();
    loop.tick();
    expect_resumed_equal(loop, batch, tick);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, CaptureAdoptWorksInMemory) {
  FleetDriver source = make_fleet(make_options(8, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 3; ++tick) source.tick();
  const FleetCheckpoint cp = source.capture_checkpoint();
  EXPECT_EQ(cp.sessions, 8u);
  EXPECT_EQ(cp.tick, 3u);
  EXPECT_EQ(cp.stats.size(), 21u);

  FleetDriver target = make_fleet(make_options(8, FleetMode::Batch), 1234);
  target.adopt_checkpoint(cp);
  for (std::size_t tick = 3; tick < 6; ++tick) {
    source.tick();
    target.tick();
    expect_resumed_equal(target, source, tick);
  }
}

TEST(CheckpointTest, SaveIsAtomicAndOverwrites) {
  const std::string path = temp_path("fleet_atomic.ckpt");
  FleetDriver fleet = make_fleet(make_options(8, FleetMode::Batch));
  fleet.tick();
  fleet.save_checkpoint(path);
  const std::vector<unsigned char> first = read_file(path);
  fleet.tick();
  fleet.save_checkpoint(path);  // overwrite via rename, never in place
  const std::vector<unsigned char> second = read_file(path);
  EXPECT_NE(first, second);
  // No tmp residue: the staging file was renamed into place.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  // Both snapshots are independently restorable artifacts.
  FleetDriver resumed = make_fleet(make_options(8, FleetMode::Batch), 5);
  resumed.restore_checkpoint(path);
  EXPECT_EQ(resumed.stats().ticks, 2u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, HashPomdpSeparatesModels) {
  EXPECT_NE(hash_pomdp(emn().base), hash_pomdp(emn().recovery));
  EXPECT_EQ(hash_pomdp(emn().recovery), hash_pomdp(emn().recovery));
}

// ---- corruption matrix --------------------------------------------------

struct CheckpointFile {
  std::string path;
  std::vector<unsigned char> bytes;

  explicit CheckpointFile(const char* name) : path(temp_path(name)) {
    FleetDriver fleet = make_fleet(make_options(8, FleetMode::Batch));
    for (std::size_t tick = 0; tick < 3; ++tick) fleet.tick();
    fleet.save_checkpoint(path);
    bytes = read_file(path);
  }
  ~CheckpointFile() { std::remove(path.c_str()); }
};

TEST(CheckpointCorruptionTest, MissingFileIsRejected) {
  const std::string message = model_error_of(
      [] { read_fleet_checkpoint("/nonexistent/dir/fleet.ckpt"); });
  EXPECT_NE(message.find("cannot open"), std::string::npos) << message;
}

TEST(CheckpointCorruptionTest, TruncationIsRejectedAtEveryLength) {
  CheckpointFile file("fleet_truncate.ckpt");
  // A torn write can stop anywhere: inside the header, mid-payload, or one
  // byte short of the checksum. Every prefix must be cleanly rejected.
  for (const double fraction : {0.01, 0.3, 0.7, 0.999}) {
    std::vector<unsigned char> cut = file.bytes;
    cut.resize(static_cast<std::size_t>(
        static_cast<double>(file.bytes.size()) * fraction));
    write_file(file.path, cut);
    const std::string message =
        model_error_of([&] { read_fleet_checkpoint(file.path); });
    const bool actionable =
        message.find("truncated") != std::string::npos ||
        message.find("length mismatch") != std::string::npos;
    EXPECT_TRUE(actionable) << "at fraction " << fraction << ": " << message;
  }
}

TEST(CheckpointCorruptionTest, BitFlipsAreRejectedByChecksum) {
  CheckpointFile file("fleet_bitflip.ckpt");
  // Flip one bit in the length field, the payload, and the stored CRC.
  for (const std::size_t offset :
       {std::size_t{14}, file.bytes.size() / 2, file.bytes.size() - 3}) {
    std::vector<unsigned char> flipped = file.bytes;
    flipped[offset] ^= 0x10;
    write_file(file.path, flipped);
    const std::string message =
        model_error_of([&] { read_fleet_checkpoint(file.path); });
    const bool actionable =
        message.find("checksum mismatch") != std::string::npos ||
        message.find("length mismatch") != std::string::npos;
    EXPECT_TRUE(actionable) << "at offset " << offset << ": " << message;
  }
}

TEST(CheckpointCorruptionTest, ForeignFilesAreRejectedByMagic) {
  CheckpointFile file("fleet_magic.ckpt");
  std::vector<unsigned char> foreign = file.bytes;
  foreign[0] ^= 0xff;
  write_file(file.path, foreign);
  const std::string message =
      model_error_of([&] { read_fleet_checkpoint(file.path); });
  EXPECT_NE(message.find("not a recoverd fleet checkpoint"), std::string::npos)
      << message;
}

TEST(CheckpointCorruptionTest, UnknownVersionsAreRejected) {
  CheckpointFile file("fleet_version.ckpt");
  std::vector<unsigned char> future = file.bytes;
  future[8] = 99;  // version field, checked before the checksum
  write_file(file.path, future);
  const std::string message =
      model_error_of([&] { read_fleet_checkpoint(file.path); });
  EXPECT_NE(message.find("unsupported version 99"), std::string::npos) << message;
}

TEST(CheckpointCorruptionTest, WrongModelIsRejectedByHash) {
  CheckpointFile file("fleet_model.ckpt");
  // A fleet over a *different* EMN (slower DB restart → different durations,
  // rewards, transitions — same shape): the checkpoint parses fine, but
  // restore must refuse to mix models.
  EmnFleet& f = emn();
  models::EmnConfig altered;
  altered.db_restart = 480.0;
  const Pomdp other_recovery = models::make_emn_recovery_model(altered);
  ASSERT_NE(hash_pomdp(other_recovery), hash_pomdp(f.recovery));
  bounds::BoundSet other_set = bounds::make_ra_bound_set(other_recovery.mdp(), 32);
  FleetOptions options = make_options(8, FleetMode::Batch);
  FleetDriver other(other_recovery, f.base, other_set, f.injector, 41, options);
  const std::string message =
      model_error_of([&] { other.restore_checkpoint(file.path); });
  EXPECT_NE(message.find("different model"), std::string::npos) << message;
}

TEST(CheckpointCorruptionTest, WrongFleetShapeIsRejected) {
  CheckpointFile file("fleet_shape.ckpt");  // saved with 8 sessions
  FleetDriver wider = make_fleet(make_options(12, FleetMode::Batch));
  const std::string message =
      model_error_of([&] { wider.restore_checkpoint(file.path); });
  EXPECT_NE(message.find("shape mismatch"), std::string::npos) << message;
}

TEST(CheckpointCorruptionTest, DifferentBoundArtifactIsRejected) {
  // A checkpoint records the content hash of the bound artifact the fleet
  // warm-started from (0 = cold-built). Restoring it into a fleet running
  // on different bounds would silently change every subsequent decision, so
  // it must be refused with a hint at the fix.
  CheckpointFile file("fleet_artifact.ckpt");  // saved with cold-built bounds
  FleetOptions warm = make_options(8, FleetMode::Batch);
  warm.bound_artifact_hash = 0x1234abcd5678ef90ULL;
  FleetDriver fleet = make_fleet(warm);
  const std::string message =
      model_error_of([&] { fleet.restore_checkpoint(file.path); });
  EXPECT_NE(message.find("different bound artifact"), std::string::npos) << message;
  EXPECT_NE(message.find("--bounds-in"), std::string::npos) << message;
}

TEST(CheckpointTest, MatchingBoundArtifactHashRoundTrips) {
  FleetOptions options = make_options(8, FleetMode::Batch);
  options.bound_artifact_hash = 0x1234abcd5678ef90ULL;
  FleetDriver source = make_fleet(options);
  for (std::size_t tick = 0; tick < 2; ++tick) source.tick();
  const FleetCheckpoint cp = source.capture_checkpoint();
  EXPECT_EQ(cp.bound_artifact_hash, options.bound_artifact_hash);

  FleetDriver target = make_fleet(options, 99);
  target.adopt_checkpoint(cp);  // same artifact identity: accepted
  EXPECT_EQ(target.stats().ticks, 2u);
}

TEST(CheckpointCorruptionTest, ChangedOptionsAreRejectedByHash) {
  CheckpointFile file("fleet_options.ckpt");  // saved at tree_depth = 1
  FleetOptions deeper = make_options(8, FleetMode::Batch);
  deeper.tree_depth = 2;
  FleetDriver fleet = make_fleet(deeper);
  const std::string message =
      model_error_of([&] { fleet.restore_checkpoint(file.path); });
  EXPECT_NE(message.find("different fleet options"), std::string::npos) << message;
}

TEST(CheckpointCorruptionTest, RejectionLeavesDriverStateUntouched) {
  CheckpointFile file("fleet_untouched.ckpt");  // 8-session checkpoint
  FleetDriver fleet = make_fleet(make_options(12, FleetMode::Batch));
  FleetDriver twin = make_fleet(make_options(12, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 2; ++tick) {
    fleet.tick();
    twin.tick();
  }
  EXPECT_THROW(fleet.restore_checkpoint(file.path), ModelError);
  // The rejected restore was validated before application: the fleet keeps
  // ticking in lock-step with its untouched twin.
  for (std::size_t tick = 2; tick < 5; ++tick) {
    fleet.tick();
    twin.tick();
    expect_resumed_equal(fleet, twin, tick);
  }
}

}  // namespace
}  // namespace recoverd::sim
