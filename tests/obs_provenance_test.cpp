// Decision-provenance records (obs/provenance.hpp): bit-exact JSON
// round-trips, the JSONL sink lifecycle, and the disabled-path no-op.
#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace recoverd::obs {
namespace {

DecisionProvenance sample_record() {
  DecisionProvenance record;
  record.sequence = 41;
  record.controller = "interval";
  record.chosen_action = 3;
  record.terminate = false;
  record.stage = "degraded";
  record.configured_depth = 3;
  record.achieved_depth = 2;
  record.decide_ms = 17.25;
  record.bound_generation = 12;
  record.bound_size = 7;
  record.expansion.nodes = 1234;
  record.expansion.leaf_evaluations = 987;
  record.expansion.memo_hits = 55;
  record.expansion.memo_misses = 66;
  record.expansion.memo_insertions = 44;
  record.expansion.nodes_per_level = {1, 16, 256};
  // Awkward doubles: values that only survive a 17-significant-digit
  // round-trip, negatives, and a subnormal-ish magnitude.
  record.actions.push_back({0, 1.0 / 3.0, 0.0, false, false});
  record.actions.push_back({1, -123.456789012345678, 0.1 + 0.2, true, false});
  record.actions.push_back({2, -1e-17, 2.0, true, true});
  record.actions.push_back({3, 5.5, 6.5, true, false});
  return record;
}

void expect_equal(const DecisionProvenance& a, const DecisionProvenance& b) {
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.controller, b.controller);
  EXPECT_EQ(a.chosen_action, b.chosen_action);
  EXPECT_EQ(a.terminate, b.terminate);
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.configured_depth, b.configured_depth);
  EXPECT_EQ(a.achieved_depth, b.achieved_depth);
  EXPECT_EQ(a.decide_ms, b.decide_ms);
  EXPECT_EQ(a.bound_generation, b.bound_generation);
  EXPECT_EQ(a.bound_size, b.bound_size);
  EXPECT_EQ(a.expansion.nodes, b.expansion.nodes);
  EXPECT_EQ(a.expansion.leaf_evaluations, b.expansion.leaf_evaluations);
  EXPECT_EQ(a.expansion.memo_hits, b.expansion.memo_hits);
  EXPECT_EQ(a.expansion.memo_misses, b.expansion.memo_misses);
  EXPECT_EQ(a.expansion.memo_insertions, b.expansion.memo_insertions);
  EXPECT_EQ(a.expansion.nodes_per_level, b.expansion.nodes_per_level);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].action, b.actions[i].action);
    // Bit-exact: the acceptance criterion compares the written bounds with
    // the controller's in-memory doubles via operator==.
    EXPECT_EQ(a.actions[i].lower, b.actions[i].lower);
    EXPECT_EQ(a.actions[i].has_upper, b.actions[i].has_upper);
    if (a.actions[i].has_upper) {
      EXPECT_EQ(a.actions[i].upper, b.actions[i].upper);
    }
    EXPECT_EQ(a.actions[i].pruned, b.actions[i].pruned);
  }
}

TEST(Provenance, JsonRoundTripIsBitExact) {
  const DecisionProvenance record = sample_record();
  const std::string line = provenance_to_json(record);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "records must be one line";
  expect_equal(record, provenance_from_json(line));
}

TEST(Provenance, TerminateRecordRoundTrips) {
  DecisionProvenance record;
  record.controller = "bounded";
  record.stage = "goal-certain";
  record.chosen_action = -1;
  record.terminate = true;
  expect_equal(record, provenance_from_json(provenance_to_json(record)));
}

TEST(Provenance, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(provenance_from_json("not json"), ModelError);
  EXPECT_THROW(provenance_from_json("{\"schema\":\"wrong.v1\"}"), ModelError);
}

TEST(Provenance, DisabledEmitIsANoOp) {
  close_provenance();
  EXPECT_FALSE(provenance_enabled());
  emit_provenance(sample_record());  // must not crash or write anywhere
}

TEST(Provenance, SinkAssignsSequencesAndAppendsJsonl) {
  const std::string path = ::testing::TempDir() + "recoverd_provenance_test.jsonl";
  open_provenance(path);
  EXPECT_TRUE(provenance_enabled());
  emit_provenance(sample_record());
  DecisionProvenance second = sample_record();
  second.controller = "bounded";
  emit_provenance(second);
  close_provenance();
  EXPECT_FALSE(provenance_enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const DecisionProvenance first = provenance_from_json(lines[0]);
  EXPECT_EQ(first.sequence, 0u);
  EXPECT_EQ(first.controller, "interval");
  const DecisionProvenance next = provenance_from_json(lines[1]);
  EXPECT_EQ(next.sequence, 1u);
  EXPECT_EQ(next.controller, "bounded");
  std::remove(path.c_str());
}

TEST(Provenance, ReopeningTruncatesAndRestartsSequence) {
  const std::string path = ::testing::TempDir() + "recoverd_provenance_test2.jsonl";
  open_provenance(path);
  emit_provenance(sample_record());
  close_provenance();
  open_provenance(path);
  emit_provenance(sample_record());
  close_provenance();

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(provenance_from_json(lines[0]).sequence, 0u);
  std::remove(path.c_str());
}

TEST(Provenance, OpenThrowsOnUnopenablePath) {
  EXPECT_THROW(open_provenance("/nonexistent-dir/provenance.jsonl"), ModelError);
  EXPECT_FALSE(provenance_enabled());
}

}  // namespace
}  // namespace recoverd::obs
