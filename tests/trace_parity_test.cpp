// Tracing/provenance parity suite (the PR's determinism contract): enabling
// span tracing or the provenance recorder must not change a single decision
// or exported metric aggregate, at any worker count — and the provenance
// records must echo the controller's returned decisions exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bounds/ra_bound.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/interval_controller.hpp"
#include "models/two_server.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "sim/fleet_driver.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace recoverd::sim {
namespace {

class TraceParityFixture : public ::testing::Test {
 protected:
  TraceParityFixture()
      : base_(models::make_two_server()),
        recovery_(models::make_two_server_without_notification(21600.0)),
        ids_(models::two_server_ids(base_)),
        set_(bounds::make_ra_bound_set(recovery_.mdp())),
        injector_({ids_.fault_a, ids_.fault_b}) {
    config_.observe_action = ids_.observe;
    config_.fault_support = {ids_.fault_a, ids_.fault_b};
    config_.max_steps = 500;
    obs::disable_tracing();
    obs::reset_tracing();
    obs::close_provenance();
  }
  ~TraceParityFixture() override {
    obs::disable_tracing();
    obs::reset_tracing();
    obs::close_provenance();
  }

  ControllerFactory bounded_factory(int root_jobs = 1) const {
    controller::BoundedControllerOptions opts;
    opts.root_jobs = root_jobs;
    const Pomdp& model = recovery_;
    const bounds::BoundSet& set = set_;
    return [&model, set, opts] {
      return controller::BoundedController::make_owning(model, set, opts);
    };
  }

  Pomdp base_;
  Pomdp recovery_;
  models::TwoServerIds ids_;
  bounds::BoundSet set_;
  FaultInjector injector_;
  EpisodeConfig config_;
};

void expect_identical(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

// Everything except algorithm_time_ms (wall time).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.unrecovered, b.unrecovered);
  EXPECT_EQ(a.not_terminated, b.not_terminated);
  expect_identical(a.cost, b.cost);
  expect_identical(a.recovery_time, b.recovery_time);
  expect_identical(a.residual_time, b.residual_time);
  expect_identical(a.recovery_actions, b.recovery_actions);
  expect_identical(a.monitor_calls, b.monitor_calls);
}

// The deterministic face of the global metrics registry: every counter, and
// every histogram's observation count. (Histogram sums over *_ms timing
// instruments measure wall time and are legitimately nondeterministic, so
// sums/buckets are excluded; counts depend only on how often code ran.)
std::map<std::string, double> deterministic_metrics() {
  std::map<std::string, double> out;
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  for (const auto& c : snap.counters) {
    out["counter/" + c.name] = static_cast<double>(c.value);
  }
  for (const auto& h : snap.histograms) {
    out["histogram_count/" + h.name] = static_cast<double>(h.count);
  }
  return out;
}

std::map<std::string, double> delta(const std::map<std::string, double>& before,
                                    const std::map<std::string, double>& after) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    out[name] = value - (it == before.end() ? 0.0 : it->second);
  }
  return out;
}

TEST_F(TraceParityFixture, TraceParityDecisionsAndMetricsIdenticalOnVsOff) {
  const auto factory = bounded_factory();

  const auto before_off = deterministic_metrics();
  const auto off = run_experiment(base_, factory, injector_, 40, 9, config_, 1);
  const auto off_delta = delta(before_off, deterministic_metrics());

  obs::enable_tracing(obs::TraceLevel::Full);
  const auto before_on = deterministic_metrics();
  const auto on = run_experiment(base_, factory, injector_, 40, 9, config_, 1);
  const auto on_delta = delta(before_on, deterministic_metrics());
  obs::disable_tracing();
  obs::reset_tracing();

  expect_identical(off, on);
  // Tracing must never write to the metrics registry, and must not change
  // how often any instrumented path runs.
  EXPECT_EQ(off_delta, on_delta);
}

TEST_F(TraceParityFixture, TraceParityProvenanceOnVsOff) {
  const auto factory = bounded_factory();
  const auto off = run_experiment(base_, factory, injector_, 30, 17, config_, 1);

  const std::string path = ::testing::TempDir() + "trace_parity_provenance.jsonl";
  obs::open_provenance(path);
  const auto on = run_experiment(base_, factory, injector_, 30, 17, config_, 1);
  obs::close_provenance();
  std::remove(path.c_str());

  expect_identical(off, on);
}

TEST_F(TraceParityFixture, TraceParityHoldsAcrossWorkerCountsAndRootJobs) {
  obs::enable_tracing(obs::TraceLevel::Full);
  const auto reference =
      run_experiment(base_, bounded_factory(), injector_, 40, 23, config_, 1);
  const auto threaded =
      run_experiment(base_, bounded_factory(), injector_, 40, 23, config_, 4);
  const auto fanout =
      run_experiment(base_, bounded_factory(3), injector_, 40, 23, config_, 2);
  obs::disable_tracing();
  obs::reset_tracing();
  expect_identical(reference, threaded);
  expect_identical(reference, fanout);
}

TEST_F(TraceParityFixture, TraceParityProvenanceEchoesBoundedDecisions) {
  const std::string path = ::testing::TempDir() + "trace_parity_bounded.jsonl";
  obs::open_provenance(path);
  controller::BoundedController controller(recovery_, set_);
  controller.begin_episode(Belief::uniform_over(
      recovery_.num_states(), std::vector<StateId>{ids_.fault_a, ids_.fault_b}));
  std::vector<controller::Decision> decisions;
  Environment env(base_, Rng(5));
  env.reset(ids_.fault_a);
  for (int i = 0; i < 50; ++i) {
    const controller::Decision d = controller.decide();
    decisions.push_back(d);
    if (d.terminate) break;
    const auto step = env.step(d.action);
    controller.record(d.action, step.obs);
  }
  obs::close_provenance();

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::remove(path.c_str());

  ASSERT_EQ(lines.size(), decisions.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const obs::DecisionProvenance record = obs::provenance_from_json(lines[i]);
    EXPECT_EQ(record.sequence, i);
    EXPECT_EQ(record.controller, "bounded");
    EXPECT_EQ(record.terminate, decisions[i].terminate);
    if (decisions[i].action == kInvalidId) {
      EXPECT_EQ(record.chosen_action, -1);
    } else {
      EXPECT_EQ(record.chosen_action,
                static_cast<std::int64_t>(decisions[i].action));
    }
    // No deadline ladder configured: the full tree always completes.
    EXPECT_EQ(record.stage, "full");
    EXPECT_EQ(record.configured_depth, record.achieved_depth);
    EXPECT_EQ(record.actions.size(), recovery_.num_actions());
    EXPECT_GT(record.expansion.nodes, 0u);
    EXPECT_GT(record.expansion.leaf_evaluations, 0u);
    // Online improvement only ever grows the set during an episode.
    EXPECT_GE(record.bound_size, 1u);
    if (i > 0) {
      EXPECT_GE(record.bound_generation,
                obs::provenance_from_json(lines[i - 1]).bound_generation);
    }
  }
}

TEST_F(TraceParityFixture, TraceParityProvenanceEchoesIntervalBounds) {
  bounds::BoundSet lower = bounds::make_ra_bound_set(recovery_.mdp());
  bounds::SawtoothUpperBound upper(recovery_);
  controller::IntervalController controller(recovery_, lower, upper);

  const std::string path = ::testing::TempDir() + "trace_parity_interval.jsonl";
  obs::open_provenance(path);
  controller.begin_episode(Belief::point(recovery_.num_states(), ids_.fault_a));
  const controller::Decision d = controller.decide();
  const controller::IntervalDecisionStats stats = controller.last_decision();
  obs::close_provenance();

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::remove(path.c_str());

  const obs::DecisionProvenance record = obs::provenance_from_json(line);
  EXPECT_EQ(record.controller, "interval");
  ASSERT_FALSE(d.terminate);
  EXPECT_EQ(record.chosen_action, static_cast<std::int64_t>(d.action));
  ASSERT_EQ(record.actions.size(), recovery_.num_actions());
  std::size_t pruned = 0;
  for (const auto& entry : record.actions) {
    EXPECT_TRUE(entry.has_upper);
    if (entry.pruned) ++pruned;
  }
  EXPECT_EQ(pruned, stats.actions_pruned);
  // The chosen action's interval must match the controller's own report
  // bit-for-bit — the acceptance criterion for the provenance layer.
  const auto& chosen = record.actions[d.action];
  EXPECT_EQ(chosen.lower, stats.lower);
  EXPECT_EQ(chosen.upper, stats.upper);
  EXPECT_FALSE(chosen.pruned);
}

// The batch decision path (FleetDriver → action_values_batch/update_batch)
// carries its own sim.fleet.tick spans; enabling tracing must not change a
// single belief bit, action, or tally of a fleet either.
TEST_F(TraceParityFixture, TraceParityFleetBatchIdenticalOnVsOff) {
  FleetOptions options;
  options.sessions = 12;
  options.mode = FleetMode::Batch;
  options.observe_action = ids_.observe;
  options.fault_support = {ids_.fault_a, ids_.fault_b};
  options.max_steps = 500;
  constexpr std::size_t kTicks = 5;

  const auto before_off = deterministic_metrics();
  FleetDriver off(recovery_, base_, set_, injector_, 31, options);
  for (std::size_t t = 0; t < kTicks; ++t) off.tick();
  const auto off_delta = delta(before_off, deterministic_metrics());

  obs::enable_tracing(obs::TraceLevel::Full);
  const auto before_on = deterministic_metrics();
  FleetDriver on(recovery_, base_, set_, injector_, 31, options);
  for (std::size_t t = 0; t < kTicks; ++t) on.tick();
  const auto on_delta = delta(before_on, deterministic_metrics());
  obs::disable_tracing();
  obs::reset_tracing();

  for (StateId s = 0; s < recovery_.num_states(); ++s) {
    const auto lanes_off = off.beliefs().state_lanes(s);
    const auto lanes_on = on.beliefs().state_lanes(s);
    ASSERT_EQ(std::memcmp(lanes_off.data(), lanes_on.data(),
                          options.sessions * sizeof(double)),
              0)
        << "fleet belief bits diverged under tracing, state " << s;
  }
  EXPECT_TRUE(std::equal(off.last_actions().begin(), off.last_actions().end(),
                         on.last_actions().begin()));
  EXPECT_EQ(off.stats().decisions, on.stats().decisions);
  EXPECT_EQ(off.stats().classes, on.stats().classes);
  EXPECT_EQ(off.stats().shared_hits, on.stats().shared_hits);
  EXPECT_EQ(off.stats().episodes_completed, on.stats().episodes_completed);
  EXPECT_EQ(off.stats().episodes_recovered, on.stats().episodes_recovered);
  EXPECT_EQ(off.stats().belief_mismatches, on.stats().belief_mismatches);
  // Tracing must not change how often any instrumented path runs.
  EXPECT_EQ(off_delta, on_delta);
}

TEST_F(TraceParityFixture, TraceParityDisabledSpanOverheadSmoke) {
  // 2M disabled spans must be effectively free (one relaxed load each).
  // The bound is extremely loose — ~250ns per span — so it only catches a
  // disabled path that started allocating or locking.
  ASSERT_EQ(obs::trace_level(), obs::TraceLevel::Off);
  const Timer timer;
  for (int i = 0; i < 2'000'000; ++i) {
    obs::TraceSpan span("parity.overhead", obs::TraceLevel::Full);
    span.arg("i", static_cast<double>(i));
  }
  EXPECT_LT(timer.elapsed_ms(), 500.0);
}

}  // namespace
}  // namespace recoverd::sim
