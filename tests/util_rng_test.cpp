#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace recoverd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexUnbiasedAcrossSmallRange) {
  Rng rng(13);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, DiscreteMatchesWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 120000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(1);
  const std::vector<double> empty;
  EXPECT_THROW(rng.discrete(empty), PreconditionError);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.discrete(zero), PreconditionError);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.discrete(negative), PreconditionError);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(AliasTable, MatchesNormalizedWeights) {
  const std::vector<double> weights{2.0, 2.0, 4.0, 8.0};
  AliasTable table(weights);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_NEAR(table.probability(0), 0.125, 1e-12);
  EXPECT_NEAR(table.probability(3), 0.5, 1e-12);

  Rng rng(31);
  std::array<int, 4> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.125, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.125, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.5, 0.01);
}

TEST(AliasTable, SingleOutcome) {
  const std::vector<double> weights{5.0};
  AliasTable table(weights);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, HandlesZeroWeightOutcomes) {
  const std::vector<double> weights{0.0, 1.0, 0.0};
  AliasTable table(weights);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

TEST(AliasTable, RejectsInvalidWeights) {
  const std::vector<double> empty;
  EXPECT_THROW(AliasTable{empty}, PreconditionError);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(AliasTable{zeros}, PreconditionError);
}

}  // namespace
}  // namespace recoverd
