// Determinism guarantees of the parallel experiment runner: the factory
// overload of run_experiment must produce aggregates that are *bitwise*
// identical for every worker count, because episode RNG streams are
// pre-derived in episode order and the reduction happens in episode order
// regardless of which thread ran which episode (DESIGN.md §8).
//
// These tests (all named *Parallel*) are also the ones tools/check.sh runs
// under ThreadSanitizer.
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "models/two_server.hpp"

namespace recoverd::sim {
namespace {

class ParallelExperimentFixture : public ::testing::Test {
 protected:
  ParallelExperimentFixture()
      : base_(models::make_two_server()),
        ids_(models::two_server_ids(base_)),
        injector_({ids_.fault_a, ids_.fault_b}) {
    config_.observe_action = ids_.observe;
    config_.fault_support = {ids_.fault_a, ids_.fault_b};
    config_.max_steps = 500;
  }

  ControllerFactory most_likely_factory() const {
    controller::MostLikelyControllerOptions opts;
    opts.observe_action = ids_.observe;
    const Pomdp& model = base_;
    return [&model, opts] {
      return std::make_unique<controller::MostLikelyController>(model, opts);
    };
  }

  Pomdp base_;
  models::TwoServerIds ids_;
  FaultInjector injector_;
  EpisodeConfig config_;
};

void expect_identical(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

// Everything except algorithm_time_ms, which measures wall time and is the
// one legitimately nondeterministic metric.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.unrecovered, b.unrecovered);
  EXPECT_EQ(a.not_terminated, b.not_terminated);
  expect_identical(a.cost, b.cost);
  expect_identical(a.recovery_time, b.recovery_time);
  expect_identical(a.residual_time, b.residual_time);
  expect_identical(a.recovery_actions, b.recovery_actions);
  expect_identical(a.monitor_calls, b.monitor_calls);
}

TEST_F(ParallelExperimentFixture, ParallelJobs4MatchesJobs1Bitwise) {
  const auto factory = most_likely_factory();
  const auto serial = run_experiment(base_, factory, injector_, 120, 42, config_, 1);
  const auto parallel = run_experiment(base_, factory, injector_, 120, 42, config_, 4);
  expect_identical(serial, parallel);
}

TEST_F(ParallelExperimentFixture, ParallelAggregatesInvariantAcrossWorkerCounts) {
  const auto factory = most_likely_factory();
  const auto reference = run_experiment(base_, factory, injector_, 60, 7, config_, 1);
  for (const std::size_t jobs : {2u, 3u, 8u}) {
    const auto got = run_experiment(base_, factory, injector_, 60, 7, config_, jobs);
    expect_identical(reference, got);
  }
}

TEST_F(ParallelExperimentFixture, ParallelBoundedControllerMatchesJobs1Bitwise) {
  // The bounded controller exercises the full engine + BoundSet path under
  // concurrency (concurrent BoundSet::evaluate on the per-episode copies).
  const Pomdp transformed = models::make_two_server_without_notification(21600.0);
  const bounds::BoundSet set = bounds::make_ra_bound_set(transformed.mdp());
  const ControllerFactory factory = [&transformed, set] {
    return controller::BoundedController::make_owning(transformed, set,
                                                      controller::BoundedControllerOptions{});
  };
  const auto serial = run_experiment(base_, factory, injector_, 80, 11, config_, 1);
  const auto parallel = run_experiment(base_, factory, injector_, 80, 11, config_, 4);
  expect_identical(serial, parallel);
  EXPECT_EQ(serial.unrecovered, 0u);
  EXPECT_EQ(serial.not_terminated, 0u);
}

TEST_F(ParallelExperimentFixture, ParallelMatchesLegacySerialForStatelessController) {
  // A MostLikely controller carries no state across episodes, so a fresh
  // controller per episode behaves exactly like one long-lived controller:
  // per-episode metrics coincide, the means coincide bitwise (a singleton
  // merge updates the mean with the same delta/n expression Welford add
  // uses), and only the variance accumulation differs in rounding.
  controller::MostLikelyControllerOptions opts;
  opts.observe_action = ids_.observe;
  controller::MostLikelyController long_lived(base_, opts);
  const auto legacy = run_experiment(base_, long_lived, injector_, 100, 3, config_);
  const auto factored =
      run_experiment(base_, most_likely_factory(), injector_, 100, 3, config_, 4);
  EXPECT_EQ(legacy.episodes, factored.episodes);
  EXPECT_EQ(legacy.unrecovered, factored.unrecovered);
  EXPECT_EQ(legacy.not_terminated, factored.not_terminated);
  EXPECT_EQ(legacy.cost.mean(), factored.cost.mean());
  EXPECT_EQ(legacy.cost.sum(), factored.cost.sum());
  EXPECT_EQ(legacy.monitor_calls.mean(), factored.monitor_calls.mean());
  EXPECT_NEAR(legacy.cost.variance(), factored.cost.variance(),
              1e-9 * (1.0 + legacy.cost.variance()));
}

TEST_F(ParallelExperimentFixture, ParallelMoreWorkersThanEpisodesIsExact) {
  const auto factory = most_likely_factory();
  const auto serial = run_experiment(base_, factory, injector_, 3, 19, config_, 1);
  const auto parallel = run_experiment(base_, factory, injector_, 3, 19, config_, 16);
  expect_identical(serial, parallel);
}

TEST_F(ParallelExperimentFixture, ParallelZeroEpisodesIsEmpty) {
  const auto factory = most_likely_factory();
  const auto result = run_experiment(base_, factory, injector_, 0, 1, config_, 4);
  EXPECT_EQ(result.episodes, 0u);
  EXPECT_EQ(result.cost.count(), 0u);
}

TEST_F(ParallelExperimentFixture, ParallelHeuristicDepth2UsesEngineUnderThreads) {
  // Depth-2 trees drive the iterative expansion engine (not just the depth-1
  // fast path) on every worker simultaneously.
  controller::HeuristicControllerOptions opts;
  opts.tree_depth = 2;
  const Pomdp& model = base_;
  const ControllerFactory factory = [&model, opts] {
    return std::make_unique<controller::HeuristicController>(model, opts);
  };
  const auto serial = run_experiment(base_, factory, injector_, 40, 5, config_, 1);
  const auto parallel = run_experiment(base_, factory, injector_, 40, 5, config_, 4);
  expect_identical(serial, parallel);
}

TEST_F(ParallelExperimentFixture, ParallelRootFanOutInsideOneController) {
  // root_jobs > 1 inside a single decide() must not change decisions:
  // campaign aggregates with a fan-out controller equal the serial ones.
  const Pomdp transformed = models::make_two_server_without_notification(21600.0);
  const bounds::BoundSet set = bounds::make_ra_bound_set(transformed.mdp());
  controller::BoundedControllerOptions serial_opts;
  controller::BoundedControllerOptions fanout_opts;
  fanout_opts.root_jobs = 3;
  const ControllerFactory serial_factory = [&transformed, set, serial_opts] {
    return controller::BoundedController::make_owning(transformed, set, serial_opts);
  };
  const ControllerFactory fanout_factory = [&transformed, set, fanout_opts] {
    return controller::BoundedController::make_owning(transformed, set, fanout_opts);
  };
  const auto serial = run_experiment(base_, serial_factory, injector_, 60, 13, config_, 1);
  const auto fanout = run_experiment(base_, fanout_factory, injector_, 60, 13, config_, 2);
  expect_identical(serial, fanout);
}

}  // namespace
}  // namespace recoverd::sim
