#include "models/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/emn.hpp"
#include "util/check.hpp"

namespace recoverd::models {
namespace {

class EmnTopologyTest : public ::testing::Test {
 protected:
  EmnTopologyTest() : topo_(make_emn_topology()) {}

  std::vector<bool> faulty(std::initializer_list<ComponentId> comps) const {
    std::vector<bool> mask(topo_.num_components(), false);
    for (ComponentId c : comps) mask[c] = true;
    return mask;
  }

  Topology topo_;
};

TEST_F(EmnTopologyTest, StructureMatchesFigure4) {
  EXPECT_EQ(topo_.num_hosts(), 3u);
  EXPECT_EQ(topo_.num_components(), 5u);
  EXPECT_EQ(topo_.num_paths(), 2u);
  EXPECT_EQ(topo_.num_monitors(), 7u);
  EXPECT_EQ(topo_.component_name(EmnIds::HG), "HG");
  EXPECT_EQ(topo_.component_host(EmnIds::HG), static_cast<HostId>(EmnIds::HostA));
  EXPECT_EQ(topo_.component_host(EmnIds::S2), static_cast<HostId>(EmnIds::HostB));
  EXPECT_EQ(topo_.component_host(EmnIds::DB), static_cast<HostId>(EmnIds::HostC));
}

TEST_F(EmnTopologyTest, DropFractionsMatchHandComputation) {
  // No faults: nothing dropped.
  EXPECT_DOUBLE_EQ(topo_.drop_fraction(faulty({})), 0.0);
  // HG down kills all HTTP traffic (80%).
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::HG})), 0.8, 1e-12);
  // VG down kills voice traffic (20%).
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::VG})), 0.2, 1e-12);
  // One EMN server down: half of each path's requests route into it.
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::S1})), 0.5, 1e-12);
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::S2})), 0.5, 1e-12);
  // DB down: everything dropped.
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::DB})), 1.0, 1e-12);
  // Both servers: everything dropped.
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::S1, EmnIds::S2})), 1.0, 1e-12);
  // HG + S1: HTTP all gone, voice loses half.
  EXPECT_NEAR(topo_.drop_fraction(faulty({EmnIds::HG, EmnIds::S1})), 0.9, 1e-12);
}

TEST_F(EmnTopologyTest, PathHitProbability) {
  EXPECT_NEAR(topo_.path_hit_probability(0, faulty({EmnIds::S1})), 0.5, 1e-12);
  EXPECT_NEAR(topo_.path_hit_probability(0, faulty({EmnIds::VG})), 0.0, 1e-12);
  EXPECT_NEAR(topo_.path_hit_probability(1, faulty({EmnIds::VG})), 1.0, 1e-12);
  EXPECT_NEAR(topo_.path_hit_probability(1, faulty({EmnIds::DB})), 1.0, 1e-12);
}

TEST_F(EmnTopologyTest, ValidationErrors) {
  Topology t;
  EXPECT_THROW(t.add_host("", 300.0), PreconditionError);
  const HostId h = t.add_host("H", 300.0);
  EXPECT_THROW(t.add_component("c", 5, 60.0), PreconditionError);
  const ComponentId c = t.add_component("c", h, 60.0);
  EXPECT_THROW(t.add_path("p", 0.0), PreconditionError);
  const PathId p = t.add_path("p", 1.0);
  EXPECT_THROW(t.add_path_stage(p, {}), PreconditionError);
  EXPECT_THROW(t.add_path_stage(p, {{c, -1.0}}), PreconditionError);
  EXPECT_THROW(t.add_ping_monitor("m", 9, 0.9, 0.01), PreconditionError);
  EXPECT_THROW(t.add_path_monitor("m", 7, 0.9, 0.01), PreconditionError);
}

TEST_F(EmnTopologyTest, BuildRejectsInconsistentDescriptions) {
  // Traffic fractions not summing to 1.
  Topology t;
  const HostId h = t.add_host("H", 300.0);
  const ComponentId c = t.add_component("c", h, 60.0);
  const PathId p = t.add_path("p", 0.5);
  t.add_path_stage(p, {{c, 1.0}});
  t.add_ping_monitor("m", c, 0.9, 0.01);
  EXPECT_THROW(build_recovery_pomdp(t), ModelError);
}

TEST_F(EmnTopologyTest, CompiledModelShape) {
  const Pomdp p = build_recovery_pomdp(topo_);
  EXPECT_EQ(p.num_states(), 14u);        // null + 5 crash + 3 host + 5 zombie
  EXPECT_EQ(p.num_actions(), 9u);        // 5 restarts + 3 reboots + observe
  EXPECT_EQ(p.num_observations(), 128u); // 2^7 joint monitor outcomes
  EXPECT_FALSE(p.has_terminate_action());
}

TEST_F(EmnTopologyTest, TransitionSemantics) {
  const Pomdp p = build_recovery_pomdp(topo_);
  const TopologyIds ids = resolve_topology_ids(p, topo_);
  const Mdp& m = p.mdp();

  // Restart fixes own crash and zombie.
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.crash_states[EmnIds::S1],
                                     ids.restart_actions[EmnIds::S1], ids.null_state),
                   1.0);
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.zombie_states[EmnIds::S1],
                                     ids.restart_actions[EmnIds::S1], ids.null_state),
                   1.0);
  // Wrong restart leaves the fault in place.
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.crash_states[EmnIds::S1],
                                     ids.restart_actions[EmnIds::S2],
                                     ids.crash_states[EmnIds::S1]),
                   1.0);
  // Reboot fixes the host crash and any fault on that host.
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.host_states[EmnIds::HostB],
                                     ids.reboot_actions[EmnIds::HostB], ids.null_state),
                   1.0);
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.zombie_states[EmnIds::HG],
                                     ids.reboot_actions[EmnIds::HostA], ids.null_state),
                   1.0);
  // Restarting a component on a crashed host does nothing.
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.host_states[EmnIds::HostB],
                                     ids.restart_actions[EmnIds::S1],
                                     ids.host_states[EmnIds::HostB]),
                   1.0);
  // Observe is the identity.
  for (StateId s = 0; s < p.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(m.transition_prob(s, ids.observe_action, s), 1.0);
  }
}

TEST_F(EmnTopologyTest, RateRewardsIncludeActionDowntime) {
  const Pomdp p = build_recovery_pomdp(topo_);
  const TopologyIds ids = resolve_topology_ids(p, topo_);
  const Mdp& m = p.mdp();

  // Ambient rates match drop fractions.
  EXPECT_NEAR(m.state_rate_reward(ids.crash_states[EmnIds::HG]), -0.8, 1e-12);
  EXPECT_NEAR(m.state_rate_reward(ids.zombie_states[EmnIds::DB]), -1.0, 1e-12);
  EXPECT_NEAR(m.state_rate_reward(ids.null_state), 0.0, 1e-12);

  // Restarting S1 while HG is crashed: drop(HG ∪ S1) = 0.9 for the restart's
  // 60 seconds.
  EXPECT_NEAR(m.rate_reward(ids.crash_states[EmnIds::HG], ids.restart_actions[EmnIds::S1]),
              -0.9, 1e-12);
  EXPECT_NEAR(m.reward(ids.crash_states[EmnIds::HG], ids.restart_actions[EmnIds::S1]),
              -0.9 * 60.0, 1e-9);
  // Rebooting HostB in the Null state takes down both EMN servers: drop 1.
  EXPECT_NEAR(m.rate_reward(ids.null_state, ids.reboot_actions[EmnIds::HostB]), -1.0,
              1e-12);
  EXPECT_NEAR(m.reward(ids.null_state, ids.reboot_actions[EmnIds::HostB]), -300.0, 1e-9);
  // Observing is free in Null and costs the ambient rate elsewhere.
  EXPECT_NEAR(m.reward(ids.null_state, ids.observe_action), 0.0, 1e-12);
  EXPECT_NEAR(m.reward(ids.zombie_states[EmnIds::S1], ids.observe_action), -0.5 * 5.0,
              1e-9);
}

TEST_F(EmnTopologyTest, ObservationModelMatchesHandComputation) {
  const Pomdp p = build_recovery_pomdp(topo_);
  const TopologyIds ids = resolve_topology_ids(p, topo_);
  // All-clear (obs id 0) from Zombie(S1): pings all OK (0.99 each), each
  // path monitor fails with 0.5·0.95 + 0.5·0.01 = 0.48.
  const double expected = std::pow(0.99, 5) * 0.52 * 0.52;
  EXPECT_NEAR(p.observation_prob(ids.zombie_states[EmnIds::S1], ids.observe_action, 0),
              expected, 1e-6);
  // All-clear from Null: pings 0.99 each, paths fail only on false positives.
  const double null_clear = std::pow(0.99, 5) * 0.99 * 0.99;
  EXPECT_NEAR(p.observation_prob(ids.null_state, ids.observe_action, 0), null_clear, 1e-6);
  // Crash(S1): S1Mon (bit 2) fires with 0.95.
  double s1_alarm = 0.0;
  for (ObsId o = 0; o < p.num_observations(); ++o) {
    if ((o >> 2) & 1) {
      s1_alarm += p.observation_prob(ids.crash_states[EmnIds::S1], ids.observe_action, o);
    }
  }
  EXPECT_NEAR(s1_alarm, 0.95, 1e-6);
  // Zombies do NOT trip their ping monitor beyond the false-positive rate.
  double zombie_alarm = 0.0;
  for (ObsId o = 0; o < p.num_observations(); ++o) {
    if ((o >> 2) & 1) {
      zombie_alarm +=
          p.observation_prob(ids.zombie_states[EmnIds::S1], ids.observe_action, o);
    }
  }
  EXPECT_NEAR(zombie_alarm, 0.01, 1e-6);
}

TEST_F(EmnTopologyTest, MonitorLimitEnforced) {
  Topology t;
  const HostId h = t.add_host("H", 300.0);
  const ComponentId c = t.add_component("c", h, 60.0);
  const PathId p = t.add_path("p", 1.0);
  t.add_path_stage(p, {{c, 1.0}});
  for (int i = 0; i < 21; ++i) {
    std::string name = "m";
    name += std::to_string(i);
    t.add_ping_monitor(name, c, 0.9, 0.01);
  }
  EXPECT_THROW(build_recovery_pomdp(t), ModelError);
}

}  // namespace
}  // namespace recoverd::models
