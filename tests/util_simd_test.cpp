// Process-wide SIMD mode selection (`--simd={auto,avx2,scalar}`): flag
// resolution, CPU feature consistency, and the actionable-error contract
// when AVX2 is forced on hardware (or a build) without it.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/check.hpp"

namespace recoverd::simd {
namespace {

// Every test leaves the process in the default `auto` resolution, so suite
// ordering can't leak a forced mode into unrelated kernels.
struct SimdConfigTest : ::testing::Test {
  ~SimdConfigTest() override { configure("auto"); }
};

TEST_F(SimdConfigTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(mode_name(Mode::Scalar), "scalar");
  EXPECT_STREQ(mode_name(Mode::Avx2), "avx2");
}

TEST_F(SimdConfigTest, CpuSupportImpliesCompiledSupport) {
  if (cpu_supports_avx2()) {
    EXPECT_TRUE(compiled_with_avx2())
        << "cpu_supports_avx2() must be false when the build lacks the kernels";
  }
}

TEST_F(SimdConfigTest, ScalarForcesReferenceKernels) {
  configure("scalar");
  EXPECT_EQ(active_mode(), Mode::Scalar);
  EXPECT_NE(describe_active_mode().find("scalar"), std::string::npos);
  EXPECT_NE(describe_active_mode().find("forced"), std::string::npos);
}

TEST_F(SimdConfigTest, AutoResolvesToBestSupportedKernel) {
  configure("auto");
  const Mode expected = cpu_supports_avx2() ? Mode::Avx2 : Mode::Scalar;
  EXPECT_EQ(active_mode(), expected);
  EXPECT_NE(describe_active_mode().find("auto"), std::string::npos);
}

TEST_F(SimdConfigTest, ForcedAvx2RunsOrFailsActionably) {
  if (cpu_supports_avx2()) {
    configure("avx2");
    EXPECT_EQ(active_mode(), Mode::Avx2);
  } else {
    // The contract is a clear error, not a crash or an SIGILL later on.
    EXPECT_THROW(configure("avx2"), PreconditionError);
    EXPECT_EQ(active_mode(), Mode::Scalar);
  }
}

TEST_F(SimdConfigTest, UnknownFlagValueThrows) {
  EXPECT_THROW(configure("sse9"), PreconditionError);
  EXPECT_THROW(configure(""), PreconditionError);
}

TEST_F(SimdConfigTest, ReconfigureIsIdempotent) {
  configure("scalar");
  configure("scalar");
  EXPECT_EQ(active_mode(), Mode::Scalar);
  configure("auto");
  const Mode resolved = active_mode();
  configure("auto");
  EXPECT_EQ(active_mode(), resolved);
}

}  // namespace
}  // namespace recoverd::simd
