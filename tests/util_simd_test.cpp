// Process-wide SIMD mode selection (`--simd={auto,avx512,avx2,scalar}`):
// flag resolution, CPU feature consistency, and the actionable-error
// contract when a vector tier is forced on hardware (or a build) without
// it. Kernel-level bitwise parity lives in pomdp_batch_parity_test (whole
// decide/update paths, scalar vs auto) and tests/pomdp_deep_batch_test.cpp
// (per-tier deep-batch parity).
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/check.hpp"

namespace recoverd::simd {
namespace {

// Every test leaves the process in the default `auto` resolution, so suite
// ordering can't leak a forced mode into unrelated kernels.
struct SimdConfigTest : ::testing::Test {
  ~SimdConfigTest() override { configure("auto"); }
};

TEST_F(SimdConfigTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(mode_name(Mode::Scalar), "scalar");
  EXPECT_STREQ(mode_name(Mode::Avx2), "avx2");
  EXPECT_STREQ(mode_name(Mode::Avx512), "avx512");
}

TEST_F(SimdConfigTest, CpuSupportImpliesCompiledSupport) {
  if (cpu_supports_avx2()) {
    EXPECT_TRUE(compiled_with_avx2())
        << "cpu_supports_avx2() must be false when the build lacks the kernels";
  }
  if (cpu_supports_avx512()) {
    EXPECT_TRUE(compiled_with_avx512())
        << "cpu_supports_avx512() must be false when the build lacks the kernels";
  }
}

TEST_F(SimdConfigTest, ScalarForcesReferenceKernels) {
  configure("scalar");
  EXPECT_EQ(active_mode(), Mode::Scalar);
  EXPECT_NE(describe_active_mode().find("scalar"), std::string::npos);
  EXPECT_NE(describe_active_mode().find("forced"), std::string::npos);
}

TEST_F(SimdConfigTest, AutoResolvesToBestSupportedKernel) {
  configure("auto");
  const Mode expected = cpu_supports_avx512() ? Mode::Avx512
                        : cpu_supports_avx2() ? Mode::Avx2
                                              : Mode::Scalar;
  EXPECT_EQ(active_mode(), expected);
  EXPECT_NE(describe_active_mode().find("auto"), std::string::npos);
}

TEST_F(SimdConfigTest, ForcedAvx2RunsOrFailsActionably) {
  if (cpu_supports_avx2()) {
    configure("avx2");
    EXPECT_EQ(active_mode(), Mode::Avx2);
  } else {
    // The contract is a clear error, not a crash or an SIGILL later on.
    EXPECT_THROW(configure("avx2"), PreconditionError);
    EXPECT_EQ(active_mode(), Mode::Scalar);
  }
}

TEST_F(SimdConfigTest, ForcedAvx512RunsOrFailsActionably) {
  configure("scalar");  // a failed force must leave the previous mode alone
  if (cpu_supports_avx512()) {
    configure("avx512");
    EXPECT_EQ(active_mode(), Mode::Avx512);
  } else {
    try {
      configure("avx512");
      FAIL() << "--simd=avx512 must throw on hardware without AVX-512F";
    } catch (const PreconditionError& error) {
      // Actionable: names the flag and the tiers that do work here.
      EXPECT_NE(std::string(error.what()).find("--simd=avx512"), std::string::npos);
      EXPECT_NE(std::string(error.what()).find("--simd=auto"), std::string::npos);
    }
    EXPECT_EQ(active_mode(), Mode::Scalar);
  }
}

TEST_F(SimdConfigTest, UnknownFlagValueThrows) {
  EXPECT_THROW(configure("sse9"), PreconditionError);
  EXPECT_THROW(configure(""), PreconditionError);
}

TEST_F(SimdConfigTest, ReconfigureIsIdempotent) {
  configure("scalar");
  configure("scalar");
  EXPECT_EQ(active_mode(), Mode::Scalar);
  configure("auto");
  const Mode resolved = active_mode();
  configure("auto");
  EXPECT_EQ(active_mode(), resolved);
}

}  // namespace
}  // namespace recoverd::simd
