#include "pomdp/mdp.hpp"

#include <gtest/gtest.h>

#include "models/two_server.hpp"
#include "pomdp/pomdp.hpp"
#include "util/check.hpp"

namespace recoverd {
namespace {

TEST(MdpBuilder, BuildsValidatedModel) {
  MdpBuilder b;
  const StateId good = b.add_state("good", 0.0);
  const StateId bad = b.add_state("bad", -1.0);
  const ActionId fix = b.add_action("fix", 2.0);
  b.set_transition(bad, fix, good, 0.8);
  b.set_transition(bad, fix, bad, 0.2);
  b.set_transition(good, fix, good, 1.0);
  b.mark_goal(good);

  const Mdp m = b.build();
  EXPECT_EQ(m.num_states(), 2u);
  EXPECT_EQ(m.num_actions(), 1u);
  EXPECT_EQ(m.state_name(bad), "bad");
  EXPECT_EQ(m.action_name(fix), "fix");
  EXPECT_DOUBLE_EQ(m.transition_prob(bad, fix, good), 0.8);
  EXPECT_DOUBLE_EQ(m.transition_prob(bad, fix, bad), 0.2);
  EXPECT_DOUBLE_EQ(m.transition_prob(good, fix, bad), 0.0);
  // Default rate reward = ambient rate; duration 2 => combined -2.
  EXPECT_DOUBLE_EQ(m.reward(bad, fix), -2.0);
  EXPECT_DOUBLE_EQ(m.reward(good, fix), 0.0);
  EXPECT_DOUBLE_EQ(m.duration(fix), 2.0);
  EXPECT_DOUBLE_EQ(m.state_rate_reward(bad), -1.0);
  EXPECT_TRUE(m.is_goal(good));
  EXPECT_FALSE(m.is_goal(bad));
  ASSERT_EQ(m.goal_states().size(), 1u);
  EXPECT_EQ(m.goal_states()[0], good);
}

TEST(MdpBuilder, RewardOverridesAndImpulse) {
  MdpBuilder b;
  const StateId s = b.add_state("s", -0.25);
  const ActionId a = b.add_action("a", 4.0);
  b.set_transition(s, a, s, 1.0);
  b.set_rate_reward(s, a, -0.5);
  b.set_impulse_reward(s, a, -3.0);
  const Mdp m = b.build();
  EXPECT_DOUBLE_EQ(m.rate_reward(s, a), -0.5);
  EXPECT_DOUBLE_EQ(m.impulse_reward(s, a), -3.0);
  EXPECT_DOUBLE_EQ(m.reward(s, a), -0.5 * 4.0 - 3.0);
}

TEST(MdpBuilder, RejectsNonStochasticRow) {
  MdpBuilder b;
  const StateId s = b.add_state("s");
  const StateId t = b.add_state("t");
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s, a, t, 0.5);  // row sums to 0.5
  b.set_transition(t, a, t, 1.0);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(MdpBuilder, RejectsMissingRow) {
  MdpBuilder b;
  b.add_state("s");
  b.add_action("a", 1.0);
  EXPECT_THROW(b.build(), ModelError);  // no transitions at all
}

TEST(MdpBuilder, RejectsPositiveReward) {
  MdpBuilder b;
  const StateId s = b.add_state("s", 0.0);
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s, a, s, 1.0);
  b.set_impulse_reward(s, a, 1.0);  // positive reward violates Condition 2
  EXPECT_THROW(b.build(), ModelError);
}

TEST(MdpBuilder, RejectsPositiveAmbientRate) {
  MdpBuilder b;
  EXPECT_THROW(b.add_state("s", 0.5), PreconditionError);
}

TEST(MdpBuilder, RejectsEmptyModel) {
  MdpBuilder b;
  EXPECT_THROW(b.build(), ModelError);
  b.add_state("s");
  EXPECT_THROW(b.build(), ModelError);  // still no actions
}

TEST(MdpBuilder, TransitionOverwriteReplacesProbability) {
  MdpBuilder b;
  const StateId s = b.add_state("s");
  const StateId t = b.add_state("t");
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s, a, t, 0.4);
  b.set_transition(s, a, t, 1.0);  // overwrite, not accumulate
  b.set_transition(t, a, t, 1.0);
  const Mdp m = b.build();
  EXPECT_DOUBLE_EQ(m.transition_prob(s, a, t), 1.0);
}

TEST(MdpBuilder, StatesAddedAfterActions) {
  MdpBuilder b;
  const ActionId a = b.add_action("a", 1.0);
  const StateId s = b.add_state("s");
  b.set_transition(s, a, s, 1.0);
  const Mdp m = b.build();
  EXPECT_EQ(m.num_states(), 1u);
  EXPECT_DOUBLE_EQ(m.transition_prob(s, a, s), 1.0);
}

TEST(Mdp, FindByName) {
  const Pomdp p = models::make_two_server();
  EXPECT_EQ(p.mdp().find_state("Fault(a)"), 1u);
  EXPECT_EQ(p.mdp().find_state("nonexistent"), kInvalidId);
  EXPECT_NE(p.mdp().find_action("Observe"), kInvalidId);
  EXPECT_EQ(p.find_observation("clear"), 2u);
  EXPECT_EQ(p.find_observation("nope"), kInvalidId);
}

TEST(Mdp, GoalProbability) {
  const Pomdp p = models::make_two_server();
  const std::vector<double> dist{0.5, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(p.mdp().goal_probability(dist), 0.5);
}

TEST(PomdpBuilder, ObservationRowsValidated) {
  PomdpBuilder b;
  const StateId s = b.add_state("s");
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s, a, s, 1.0);
  const ObsId o = b.add_observation("o");
  b.set_observation(s, a, o, 0.5);  // sums to 0.5
  EXPECT_THROW(b.build(), ModelError);
  b.set_observation(s, a, o, 1.0);
  EXPECT_NO_THROW(b.build());
}

TEST(PomdpBuilder, RequiresObservations) {
  PomdpBuilder b;
  const StateId s = b.add_state("s");
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s, a, s, 1.0);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Pomdp, TwoServerObservationModel) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  EXPECT_DOUBLE_EQ(p.observation_prob(ids.fault_a, ids.observe, ids.alarm_a), 0.9);
  EXPECT_DOUBLE_EQ(p.observation_prob(ids.fault_a, ids.observe, ids.clear), 0.1);
  EXPECT_DOUBLE_EQ(p.observation_prob(ids.null_state, ids.observe, ids.clear), 0.9);
  EXPECT_DOUBLE_EQ(p.observation_prob(ids.null_state, ids.observe, ids.alarm_b), 0.05);
  EXPECT_FALSE(p.has_terminate_action());
}

TEST(Pomdp, TwoServerRewardsMatchFigure1a) {
  const Pomdp p = models::make_two_server();
  const auto ids = models::two_server_ids(p);
  const Mdp& m = p.mdp();
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_a, ids.restart_a), -0.5);
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_a, ids.restart_b), -1.0);
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_a, ids.observe), -0.5);
  EXPECT_DOUBLE_EQ(m.reward(ids.null_state, ids.restart_a), -0.5);
  EXPECT_DOUBLE_EQ(m.reward(ids.null_state, ids.observe), 0.0);
}

}  // namespace
}  // namespace recoverd
