// End-to-end integration: every controller recovers the two-server system,
// metrics behave, and the RA-Bound is validated against the empirical cost
// of the random policy it models.
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "controller/oracle_controller.hpp"
#include "controller/random_controller.hpp"
#include "models/two_server.hpp"

namespace recoverd::sim {
namespace {

class ExperimentFixture : public ::testing::Test {
 protected:
  ExperimentFixture()
      : base_(models::make_two_server()),
        ids_(models::two_server_ids(base_)),
        injector_({models::two_server_ids(base_).fault_a,
                   models::two_server_ids(base_).fault_b}) {
    config_.observe_action = ids_.observe;
    config_.fault_support = {ids_.fault_a, ids_.fault_b};
    config_.max_steps = 500;
  }

  Pomdp base_;
  models::TwoServerIds ids_;
  FaultInjector injector_;
  EpisodeConfig config_;
};

TEST_F(ExperimentFixture, OracleRecoversInExactlyOneAction) {
  Environment* env_ptr = nullptr;
  controller::OracleController oracle(base_, [&] { return env_ptr->true_state(); });
  EpisodeConfig config = config_;
  config.initial_observation = false;  // the oracle needs no monitors

  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Environment env(base_, rng.split());
    env_ptr = &env;
    const auto m = run_episode(env, oracle, injector_.sample(rng), config);
    EXPECT_TRUE(m.terminated);
    EXPECT_TRUE(m.recovered);
    EXPECT_EQ(m.recovery_actions, 1u);
    EXPECT_EQ(m.monitor_calls, 0u);
    EXPECT_DOUBLE_EQ(m.cost, 0.5);  // single correct restart
    EXPECT_DOUBLE_EQ(m.residual_time, 1.0);
    EXPECT_DOUBLE_EQ(m.recovery_time, m.residual_time);
  }
}

TEST_F(ExperimentFixture, BoundedControllerAlwaysRecoversAndTerminates) {
  const Pomdp transformed = models::make_two_server_without_notification(21600.0);
  bounds::BoundSet set = bounds::make_ra_bound_set(transformed.mdp());
  controller::BoundedController c(transformed, set);
  const auto result = run_experiment(base_, c, injector_, 200, 42, config_);
  EXPECT_EQ(result.episodes, 200u);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
  EXPECT_GT(result.cost.mean(), 0.0);
  EXPECT_GE(result.recovery_time.mean(), result.residual_time.mean());
}

TEST_F(ExperimentFixture, HeuristicControllerAlwaysRecoversAndTerminates) {
  controller::HeuristicController c(base_);
  const auto result = run_experiment(base_, c, injector_, 200, 43, config_);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
  // At least the initial monitor reading happens every episode. (The "many
  // extra monitor calls" Table 1 shape needs the EMN model's ambiguity; on
  // this toy model deterministic repairs reach certainty quickly.)
  EXPECT_GE(result.monitor_calls.mean(), 1.0);
}

TEST_F(ExperimentFixture, MostLikelyControllerAlwaysRecoversAndTerminates) {
  controller::MostLikelyControllerOptions opts;
  opts.observe_action = ids_.observe;
  controller::MostLikelyController c(base_, opts);
  const auto result = run_experiment(base_, c, injector_, 200, 44, config_);
  EXPECT_EQ(result.unrecovered, 0u);
  EXPECT_EQ(result.not_terminated, 0u);
}

TEST_F(ExperimentFixture, CostOrderingOracleBoundedHeuristic) {
  // Table 1 shape: Oracle ≤ Bounded ≤ Heuristic(d=1) on mean cost.
  Environment* env_ptr = nullptr;
  controller::OracleController oracle(base_, [&] { return env_ptr->true_state(); });
  EpisodeConfig oracle_config = config_;
  oracle_config.initial_observation = false;
  RunningStats oracle_cost;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    Environment env(base_, rng.split());
    env_ptr = &env;
    oracle_cost.add(run_episode(env, oracle, injector_.sample(rng), oracle_config).cost);
  }

  const Pomdp transformed = models::make_two_server_without_notification(21600.0);
  bounds::BoundSet set = bounds::make_ra_bound_set(transformed.mdp());
  controller::BoundedController bounded(transformed, set);
  const auto bounded_result = run_experiment(base_, bounded, injector_, 300, 7, config_);

  controller::HeuristicController heuristic(base_);
  const auto heuristic_result = run_experiment(base_, heuristic, injector_, 300, 7, config_);

  EXPECT_LE(oracle_cost.mean(), bounded_result.cost.mean() + 1e-9);
  EXPECT_LE(bounded_result.cost.mean(),
            heuristic_result.cost.mean() + heuristic_result.cost.ci95_halfwidth());
}

TEST_F(ExperimentFixture, RandomPolicyCostMatchesRaBoundPrediction) {
  // The RA-Bound *is* the value of the uniform-random policy; with perfect
  // monitors (so the episode stops exactly on recovery, mirroring the
  // absorbing-goal chain of Fig. 2(a)) the empirical mean cost from a point
  // belief must match −V_m⁻(s) within confidence bounds.
  models::TwoServerParams params;
  params.coverage = 1.0;
  params.false_positive = 0.0;
  const Pomdp perfect = models::make_two_server(params);
  const Pomdp notified = models::make_two_server_with_notification(params);
  const auto ids = models::two_server_ids(perfect);

  const auto ra = bounds::compute_ra_bound(notified.mdp());
  ASSERT_TRUE(ra.converged());

  controller::RandomController c(notified, Rng(99));
  EpisodeConfig config;
  config.observe_action = ids.observe;
  config.initial_observation = false;  // start exactly at the point belief
  config.fault_support = {ids.fault_a};
  config.max_steps = 10000;

  FaultInjector only_a({ids.fault_a});
  const auto result = run_experiment(perfect, c, only_a, 3000, 11, config);
  EXPECT_EQ(result.not_terminated, 0u);
  const double predicted_cost = -ra.values[ids.fault_a];  // = 2.0
  EXPECT_NEAR(result.cost.mean(), predicted_cost,
              3.0 * result.cost.ci95_halfwidth() + 0.05);
}

TEST_F(ExperimentFixture, MaxStepsCapIsReported) {
  // With a one-decision cap no controller can both act and declare
  // termination, so every episode must trip the not_terminated flag.
  controller::RandomController c(base_, Rng(1));
  EpisodeConfig config = config_;
  config.max_steps = 1;
  const auto result = run_experiment(base_, c, injector_, 20, 13, config);
  EXPECT_EQ(result.not_terminated, 20u);
}

TEST_F(ExperimentFixture, AlgorithmTimeIsMeasured) {
  const Pomdp transformed = models::make_two_server_without_notification(21600.0);
  bounds::BoundSet set = bounds::make_ra_bound_set(transformed.mdp());
  controller::BoundedController c(transformed, set);
  const auto result = run_experiment(base_, c, injector_, 20, 45, config_);
  EXPECT_GT(result.algorithm_time_ms.mean(), 0.0);
}

}  // namespace
}  // namespace recoverd::sim
