#include "bounds/hsvi.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "pomdp/exact_solver.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {
namespace {

TEST(Hsvi, ClosesGapOnTwoServerTerminateModel) {
  const Pomdp p = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(p);
  BoundSet lower = make_ra_bound_set(p.mdp());
  SawtoothUpperBound upper(p);
  const Belief root = Belief::uniform_over(
      p.num_states(), std::vector<StateId>{ids.fault_a, ids.fault_b});

  HsviOptions opts;
  opts.epsilon = 0.1;
  const auto result = hsvi_solve(p, lower, upper, root, opts);
  EXPECT_TRUE(result.converged) << "gap " << result.gap() << " after "
                                << result.trials << " trials";
  EXPECT_LE(result.lower, result.upper + 1e-9);
  // The certified interval must bracket a plausible recovery cost: one
  // observe (~0.5 expected) plus one restart (~0.75 expected) territory.
  EXPECT_LT(result.upper, 0.0);
  EXPECT_GT(result.lower, -10.0);
}

TEST(Hsvi, IntervalBracketsExactFiniteHorizonValue) {
  // V_H ≥ V* for all H on negative models, so the HSVI lower bound must
  // stay below every finite-horizon value; and since recovery completes
  // within a few steps here, a deep V_H approximates V* from above and must
  // sit below the HSVI upper bound + tolerance.
  const Pomdp p = models::make_two_server_with_notification();
  BoundSet lower = make_ra_bound_set(p.mdp());
  SawtoothUpperBound upper(p);
  const Belief root = Belief::uniform(p.num_states());

  HsviOptions opts;
  opts.epsilon = 0.05;
  const auto result = hsvi_solve(p, lower, upper, root, opts);
  EXPECT_LE(result.lower, result.upper + 1e-9);

  ExactSolverOptions exact_opts;
  exact_opts.horizon = 8;
  const auto exact = solve_finite_horizon(p, exact_opts);
  ASSERT_FALSE(exact.truncated);
  const double vh = evaluate_alpha_vectors(exact.alpha_vectors, root);
  EXPECT_LE(result.lower, vh + 1e-6);
  EXPECT_GE(result.upper, vh - 0.5);  // V_H is itself an upper bound on V*
}

TEST(Hsvi, MonotoneAcrossRepeatedCalls) {
  const Pomdp p = models::make_two_server_without_notification(100.0);
  BoundSet lower = make_ra_bound_set(p.mdp());
  SawtoothUpperBound upper(p);
  const Belief root = Belief::uniform(p.num_states());

  HsviOptions opts;
  opts.epsilon = 1e-6;  // unreachable: run fixed trial budgets
  opts.max_trials = 5;
  const auto first = hsvi_solve(p, lower, upper, root, opts);
  const auto second = hsvi_solve(p, lower, upper, root, opts);
  EXPECT_GE(second.lower + 1e-9, first.lower);
  EXPECT_LE(second.upper, first.upper + 1e-9);
}

TEST(Hsvi, ShrinksGapOnEmnModel) {
  const Pomdp p = models::make_emn_recovery_model();
  BoundSet lower = make_ra_bound_set(p.mdp());
  SawtoothUpperBound upper(p);
  std::vector<StateId> faults;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!p.mdp().is_goal(s) && s != p.terminate_state()) faults.push_back(s);
  }
  const Belief root = Belief::uniform_over(p.num_states(), faults);

  const double initial_gap =
      upper.evaluate(root) - lower.evaluate(root.probabilities());
  HsviOptions opts;
  opts.epsilon = 1.0;
  opts.max_trials = 30;
  const auto result = hsvi_solve(p, lower, upper, root, opts);
  EXPECT_LT(result.gap(), initial_gap * 0.25)
      << "initial " << initial_gap << " final " << result.gap();
  EXPECT_LE(result.lower, result.upper + 1e-9);
}

TEST(Hsvi, Validation) {
  const Pomdp p = models::make_two_server_without_notification(100.0);
  BoundSet empty(p.num_states());
  SawtoothUpperBound upper(p);
  const Belief root = Belief::uniform(p.num_states());
  EXPECT_THROW(hsvi_solve(p, empty, upper, root), PreconditionError);
  BoundSet ok = make_ra_bound_set(p.mdp());
  HsviOptions opts;
  opts.epsilon = 0.0;
  EXPECT_THROW(hsvi_solve(p, ok, upper, root, opts), PreconditionError);
}

}  // namespace
}  // namespace recoverd::bounds
