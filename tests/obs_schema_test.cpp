// Acceptance test for the observability stack: run a real recovery episode
// through the bounded controller, dump the global registry as JSON, parse
// it back, and check that every paper-facing instrument reported.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "models/two_server.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace recoverd {
namespace {

obs::Json episode_metrics_json() {
  // Each gtest case runs in its own process under ctest, but reset anyway so
  // the numbers below are attributable to this episode alone.
  obs::metrics().reset();

  const Pomdp base = models::make_two_server();
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(base);
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp());
  controller::BoundedController ctrl(recovery, set);

  sim::Environment env(base, Rng(5));
  sim::EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};
  sim::run_episode(env, ctrl, ids.fault_a, config);

  std::ostringstream os;
  obs::write_json(os, obs::metrics().snapshot());
  // The exporter's own reader must accept what it wrote (schema + bucket
  // consistency checks live there).
  obs::read_json_text(os.str());
  return obs::Json::parse(os.str());
}

TEST(MetricsSchema, EpisodeDumpContainsThePaperFacingInstruments) {
  const obs::Json doc = episode_metrics_json();

  EXPECT_EQ(doc.at("schema").as_string(), "recoverd.metrics.v1");
  const obs::Json& counters = doc.at("counters");
  const obs::Json& gauges = doc.at("gauges");
  const obs::Json& histograms = doc.at("histograms");

  // Topology-aware Eq. 5 solver behind the RA-Bound: chain assembly, SCC
  // condensation, and the per-component solves.
  EXPECT_GE(counters.at("bounds.ra_chain.assemblies").as_number(), 1.0);
  EXPECT_GE(counters.at("linalg.scc.plans").as_number(), 1.0);
  EXPECT_GE(counters.at("linalg.scc_solve.solves").as_number(), 1.0);
  EXPECT_GE(gauges.at("linalg.scc.components").as_number(), 1.0);
  EXPECT_GE(counters.at("bounds.ra_bound.solves").as_number(), 1.0);

  // RA-Bound hyperplane count: one RA vector plus any accepted Eq. 7 updates.
  EXPECT_GE(gauges.at("bounds.set.size").as_number(), 1.0);

  // Eq. 7 incremental updates: decide() improves the set at the current belief.
  EXPECT_GE(counters.at("bounds.update.attempted").as_number(), 1.0);
  ASSERT_TRUE(counters.contains("bounds.update.accepted"));
  ASSERT_TRUE(counters.contains("bounds.update.rejected"));
  EXPECT_EQ(counters.at("bounds.update.attempted").as_number(),
            counters.at("bounds.update.accepted").as_number() +
                counters.at("bounds.update.rejected").as_number());

  // Max-Avg tree volume and branch pruning.
  EXPECT_GE(counters.at("pomdp.bellman.nodes_expanded").as_number(), 1.0);
  EXPECT_GE(counters.at("pomdp.belief.branches_kept").as_number(), 1.0);
  ASSERT_TRUE(counters.contains("pomdp.belief.branches_pruned"));

  // decide() latency histogram: one sample per decision, buckets consistent.
  const double decides = counters.at("controller.bounded.decides").as_number();
  EXPECT_GE(decides, 1.0);
  const obs::Json& latency = histograms.at("controller.bounded.decide_ms");
  EXPECT_EQ(latency.at("count").as_number(), decides);
  EXPECT_EQ(latency.at("counts").as_array().size(),
            latency.at("uppers").as_array().size() + 1);
  double bucket_total = 0.0;
  for (const auto& c : latency.at("counts").as_array()) bucket_total += c.as_number();
  EXPECT_EQ(bucket_total, decides);
  EXPECT_EQ(histograms.at("controller.bounded.nodes_per_decide").at("count").as_number(),
            decides);

  // Experiment-harness aggregates.
  EXPECT_EQ(counters.at("sim.episodes").as_number(), 1.0);
  EXPECT_GE(counters.at("sim.steps").as_number(), 1.0);
  EXPECT_EQ(histograms.at("sim.episode_cost").at("count").as_number(), 1.0);
}

TEST(MetricsSchema, ResetZeroesTheEpisodeCounters) {
  episode_metrics_json();
  obs::metrics().reset();
  std::ostringstream os;
  obs::write_json(os, obs::metrics().snapshot());
  const obs::Json doc = obs::Json::parse(os.str());
  // Registrations survive (the keys are still there) but values are zero.
  EXPECT_EQ(doc.at("counters").at("controller.bounded.decides").as_number(), 0.0);
  EXPECT_EQ(doc.at("counters").at("sim.episodes").as_number(), 0.0);
  EXPECT_EQ(doc.at("histograms").at("controller.bounded.decide_ms").at("count").as_number(),
            0.0);
}

}  // namespace
}  // namespace recoverd
