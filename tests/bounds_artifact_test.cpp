// Bound-artifact suite (DESIGN.md §15): a chain + bound set saved with
// save_bound_artifact and loaded back must be bitwise-equal to the
// originals — same CSR bits, same solve plan, same plane coefficients,
// protection flags, use counters and generation — so warm-started decisions
// are indistinguishable from cold-built ones. The corruption matrix mirrors
// the fleet-checkpoint one: truncation at every depth, bit flips, foreign
// magic, version drift, nonzero reserved bytes, model-hash mismatch, empty
// and odd-sized files all map to an actionable ModelError, never partial
// data or a fault.
#include "bounds/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bounds/incremental_update.hpp"
#include "bounds/ra_bound.hpp"
#include "models/emn.hpp"
#include "obs/metrics.hpp"
#include "pomdp/belief.hpp"
#include "util/check.hpp"
#include "util/crc64.hpp"

namespace recoverd::bounds {
namespace {

struct Fixture {
  Pomdp recovery;
  RandomActionChain chain;
  std::uint64_t model_hash;

  Fixture()
      : recovery(models::make_emn_recovery_model()),
        chain(build_random_action_chain(recovery.mdp())),
        model_hash(hash_mdp(recovery.mdp())) {}

  // A set with history: extra planes from Eq. 7 backups (generation bumps),
  // plus evaluations so some use counters are nonzero — the round trip must
  // preserve all of it, not just a freshly seeded set.
  BoundSet make_warmed_set() const {
    BoundSet set = make_ra_bound_set(chain, 32);
    const std::size_t n = recovery.num_states();
    for (std::uint64_t k = 0; k < 4; ++k) {
      std::vector<double> pi(n, 0.0);
      pi[k % n] = 0.7;
      pi[(k + 3) % n] = 0.3;
      (void)improve_at(recovery, set, Belief(std::move(pi)));
    }
    (void)set.evaluate(Belief::uniform(n).probabilities());
    return set;
  }
};

Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::string model_error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ModelError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ModelError, got: " << e.what();
    return "";
  }
  ADD_FAILURE() << "expected ModelError, got no exception";
  return "";
}

void expect_chains_bitwise_equal(const RandomActionChain& a,
                                 const RandomActionChain& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  EXPECT_EQ(a.num_actions, b.num_actions);
  ASSERT_EQ(a.q.rows(), b.q.rows());
  ASSERT_EQ(a.q.cols(), b.q.cols());
  ASSERT_EQ(a.q.nonzeros(), b.q.nonzeros());
  const auto rp_a = a.q.row_offsets();
  const auto rp_b = b.q.row_offsets();
  EXPECT_EQ(std::memcmp(rp_a.data(), rp_b.data(), rp_a.size() * sizeof(std::size_t)), 0);
  const auto e_a = a.q.entry_array();
  const auto e_b = b.q.entry_array();
  EXPECT_EQ(std::memcmp(e_a.data(), e_b.data(), e_a.size() * sizeof(linalg::SparseEntry)),
            0);
  ASSERT_EQ(a.c.size(), b.c.size());
  EXPECT_EQ(std::memcmp(a.c.data(), b.c.data(), a.c.size() * sizeof(double)), 0);
  const linalg::SolvePlan& pa = a.plan;
  const linalg::SolvePlan& pb = b.plan;
  EXPECT_EQ(pa.num_components, pb.num_components);
  EXPECT_EQ(pa.num_singletons, pb.num_singletons);
  EXPECT_EQ(pa.largest_component, pb.largest_component);
  EXPECT_EQ(pa.component, pb.component);
  EXPECT_EQ(pa.members, pb.members);
  EXPECT_EQ(pa.component_ptr, pb.component_ptr);
  EXPECT_EQ(pa.level_of, pb.level_of);
  EXPECT_EQ(pa.level_components, pb.level_components);
  EXPECT_EQ(pa.level_ptr, pb.level_ptr);
}

void expect_sets_bitwise_equal(const BoundSet& a, const BoundSet& b) {
  const BoundSet::Snapshot sa = a.snapshot();
  const BoundSet::Snapshot sb = b.snapshot();
  EXPECT_EQ(sa.dimension, sb.dimension);
  EXPECT_EQ(sa.capacity, sb.capacity);
  EXPECT_EQ(sa.generation, sb.generation);
  EXPECT_EQ(sa.first_added, sb.first_added);
  ASSERT_EQ(sa.planes.size(), sb.planes.size());
  for (std::size_t i = 0; i < sa.planes.size(); ++i) {
    EXPECT_EQ(sa.planes[i].is_protected, sb.planes[i].is_protected) << "plane " << i;
    EXPECT_EQ(sa.planes[i].uses, sb.planes[i].uses) << "plane " << i;
    ASSERT_EQ(sa.planes[i].vector.size(), sb.planes[i].vector.size());
    EXPECT_EQ(std::memcmp(sa.planes[i].vector.data(), sb.planes[i].vector.data(),
                          sa.planes[i].vector.size() * sizeof(double)),
              0)
        << "plane " << i << " coefficient bits";
  }
}

// ---- round trips --------------------------------------------------------

TEST(ArtifactTest, RoundTripIsBitwise) {
  Fixture& f = fixture();
  const std::string path = temp_path("bounds_roundtrip.rdb");
  const BoundSet set = f.make_warmed_set();
  const std::uint64_t crc = save_bound_artifact(path, f.chain, set, f.model_hash);
  const BoundArtifact loaded = load_bound_artifact(path, f.model_hash);
  EXPECT_EQ(loaded.model_hash, f.model_hash);
  EXPECT_EQ(loaded.content_hash, crc);
  expect_chains_bitwise_equal(loaded.chain, f.chain);
  expect_sets_bitwise_equal(loaded.set, set);
  std::remove(path.c_str());
}

TEST(ArtifactTest, WarmStartedEvaluationsAndBackupsMatchColdBitwise) {
  Fixture& f = fixture();
  const std::string path = temp_path("bounds_warmcold.rdb");
  BoundSet cold = f.make_warmed_set();
  save_bound_artifact(path, f.chain, cold, f.model_hash);
  BoundArtifact warm = load_bound_artifact(path, f.model_hash);

  const std::size_t n = f.recovery.num_states();
  // Same evaluations bit for bit (evaluate bumps use counters identically on
  // both sides, so the comparison stays symmetric).
  for (std::uint64_t k = 0; k < 6; ++k) {
    std::vector<double> pi(n, 1.0 / static_cast<double>(n));
    pi[k % n] += 0.5;
    const Belief b{std::move(pi)};  // normalises
    EXPECT_EQ(cold.evaluate(b.probabilities()), warm.set.evaluate(b.probabilities()))
        << "evaluation " << k;
  }
  // Same Eq. 7 backup, bit for bit — including whether a plane was added and
  // the exact before/after values.
  std::vector<double> pi(n, 0.0);
  pi[1] = 1.0;
  const Belief target{std::move(pi)};
  const UpdateResult uc = improve_at(f.recovery, cold, target);
  const UpdateResult uw = improve_at(f.recovery, warm.set, target);
  EXPECT_EQ(uc.added, uw.added);
  EXPECT_EQ(uc.value_before, uw.value_before);
  EXPECT_EQ(uc.value_after, uw.value_after);
  EXPECT_EQ(uc.backing_action, uw.backing_action);
  expect_sets_bitwise_equal(cold, warm.set);
  std::remove(path.c_str());
}

TEST(ArtifactTest, SaveIsAtomicAndOverwrites) {
  Fixture& f = fixture();
  const std::string path = temp_path("bounds_atomic.rdb");
  BoundSet set = make_ra_bound_set(f.chain, 32);
  save_bound_artifact(path, f.chain, set, f.model_hash);
  const std::vector<unsigned char> first = read_file(path);
  (void)improve_at(f.recovery, set, Belief::uniform(f.recovery.num_states()));
  save_bound_artifact(path, f.chain, set, f.model_hash);
  const std::vector<unsigned char> second = read_file(path);
  EXPECT_NE(first, second);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // staging file was renamed into place
  (void)load_bound_artifact(path, f.model_hash);  // still a valid artifact
  std::remove(path.c_str());
}

TEST(ArtifactTest, ZeroExpectedHashSkipsTheModelCheck) {
  Fixture& f = fixture();
  const std::string path = temp_path("bounds_anyhash.rdb");
  const BoundSet set = make_ra_bound_set(f.chain, 32);
  save_bound_artifact(path, f.chain, set, f.model_hash);
  const BoundArtifact loaded = load_bound_artifact(path);  // no expectation
  EXPECT_EQ(loaded.model_hash, f.model_hash);
  std::remove(path.c_str());
}

// ---- corruption matrix --------------------------------------------------

struct ArtifactFile {
  std::string path;
  std::vector<unsigned char> bytes;

  explicit ArtifactFile(const char* name) : path(temp_path(name)) {
    Fixture& f = fixture();
    const BoundSet set = f.make_warmed_set();
    save_bound_artifact(path, f.chain, set, f.model_hash);
    bytes = read_file(path);
  }
  ~ArtifactFile() { std::remove(path.c_str()); }

  void load() const { (void)load_bound_artifact(path, fixture().model_hash); }
};

TEST(ArtifactCorruptionTest, MissingFileIsRejected) {
  const std::string message = model_error_of(
      [] { load_bound_artifact("/nonexistent/dir/bounds.rdb"); });
  EXPECT_NE(message.find("cannot open"), std::string::npos) << message;
}

TEST(ArtifactCorruptionTest, EmptyFileIsRejected) {
  const std::string path = temp_path("bounds_empty.rdb");
  write_file(path, {});
  const std::string message = model_error_of([&] { load_bound_artifact(path); });
  EXPECT_NE(message.find("empty file"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(ArtifactCorruptionTest, TruncationIsRejectedAtEveryLength) {
  ArtifactFile file("bounds_truncate.rdb");
  // A torn write can stop anywhere: inside the header, mid-payload (at odd,
  // unaligned offsets), or one byte short of the checksum.
  for (const double fraction : {0.001, 0.3, 0.7, 0.999}) {
    std::vector<unsigned char> cut = file.bytes;
    std::size_t len = static_cast<std::size_t>(
        static_cast<double>(file.bytes.size()) * fraction);
    len |= 1;  // force an odd (unaligned) size — the mmap path must not care
    cut.resize(len);
    write_file(file.path, cut);
    const std::string message = model_error_of([&] { file.load(); });
    const bool actionable =
        message.find("truncated") != std::string::npos ||
        message.find("length mismatch") != std::string::npos;
    EXPECT_TRUE(actionable) << "at fraction " << fraction << ": " << message;
  }
}

TEST(ArtifactCorruptionTest, TrailingBytesAreRejected) {
  ArtifactFile file("bounds_trailing.rdb");
  std::vector<unsigned char> grown = file.bytes;
  grown.push_back(0x5a);
  write_file(file.path, grown);
  const std::string message = model_error_of([&] { file.load(); });
  EXPECT_NE(message.find("length mismatch"), std::string::npos) << message;
}

TEST(ArtifactCorruptionTest, BitFlipsAreRejectedByChecksum) {
  ArtifactFile file("bounds_bitflip.rdb");
  // One bit in the payload's front (model hash), the middle (CSR bits), and
  // the stored CRC itself.
  for (const std::size_t offset :
       {std::size_t{25}, file.bytes.size() / 2, file.bytes.size() - 3}) {
    std::vector<unsigned char> flipped = file.bytes;
    flipped[offset] ^= 0x04;
    write_file(file.path, flipped);
    const std::string message = model_error_of([&] { file.load(); });
    EXPECT_NE(message.find("checksum mismatch"), std::string::npos)
        << "at offset " << offset << ": " << message;
  }
}

TEST(ArtifactCorruptionTest, ForeignFilesAreRejectedByMagic) {
  ArtifactFile file("bounds_magic.rdb");
  std::vector<unsigned char> foreign = file.bytes;
  foreign[0] ^= 0xff;
  write_file(file.path, foreign);
  const std::string message = model_error_of([&] { file.load(); });
  EXPECT_NE(message.find("not a recoverd bound artifact"), std::string::npos)
      << message;
}

TEST(ArtifactCorruptionTest, UnknownVersionsAreRejected) {
  ArtifactFile file("bounds_version.rdb");
  std::vector<unsigned char> future = file.bytes;
  future[8] = 99;  // version field, checked before the checksum
  write_file(file.path, future);
  const std::string message = model_error_of([&] { file.load(); });
  EXPECT_NE(message.find("unsupported version 99"), std::string::npos) << message;
}

TEST(ArtifactCorruptionTest, NonzeroReservedBytesAreRejected) {
  ArtifactFile file("bounds_reserved.rdb");
  std::vector<unsigned char> drifted = file.bytes;
  drifted[12] = 1;  // reserved field, must be zero in v1
  write_file(file.path, drifted);
  const std::string message = model_error_of([&] { file.load(); });
  EXPECT_NE(message.find("reserved"), std::string::npos) << message;
}

TEST(ArtifactCorruptionTest, WrongModelHashIsRejected) {
  ArtifactFile file("bounds_model.rdb");
  const std::string message = model_error_of(
      [&] { load_bound_artifact(file.path, fixture().model_hash ^ 1); });
  EXPECT_NE(message.find("different model"), std::string::npos) << message;
}

TEST(ArtifactCorruptionTest, StructuralDriftBehindAValidChecksumIsRejected) {
  // A hostile or buggy writer can produce a file whose CRC checks out but
  // whose fields are inconsistent; the structural validation must still
  // catch it. Corrupt the num_states field (payload offset 8 → file offset
  // 32) and re-seal the checksum.
  ArtifactFile file("bounds_structural.rdb");
  std::vector<unsigned char> forged = file.bytes;
  forged[32] ^= 0x01;  // num_states no longer matches the matrix dimensions
  const std::uint64_t crc = util::crc64(forged.data() + 8, forged.size() - 16);
  std::memcpy(forged.data() + forged.size() - 8, &crc, 8);
  write_file(file.path, forged);
  const std::string message = model_error_of([&] { file.load(); });
  EXPECT_NE(message.find("corrupted"), std::string::npos) << message;
}

TEST(ArtifactCorruptionTest, RejectedLoadsBumpTheRejectCounter) {
  ArtifactFile file("bounds_counter.rdb");
  std::vector<unsigned char> flipped = file.bytes;
  flipped[flipped.size() / 3] ^= 0x80;
  write_file(file.path, flipped);
  obs::Counter& rejects = obs::metrics().counter("bounds.artifact.load_rejects");
  const std::uint64_t before = rejects.value();
  EXPECT_THROW(file.load(), ModelError);
  EXPECT_EQ(rejects.value(), before + 1);
}

}  // namespace
}  // namespace recoverd::bounds
