// Parameterized property suite: the §3 bound guarantees must hold on every
// recovery model in the library, not just the models they were derived on.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "bounds/incremental_update.hpp"
#include "bounds/ra_bound.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "bounds/upper_bound.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "pomdp/bellman.hpp"
#include "pomdp/conditions.hpp"
#include "pomdp/transforms.hpp"
#include "util/rng.hpp"

namespace recoverd::bounds {
namespace {

struct ModelCase {
  std::string name;
  std::function<Pomdp()> make;
};

// A transformed (§3.1-convergent) recovery model zoo.
std::vector<ModelCase> model_zoo() {
  return {
      {"two_server_notification",
       [] { return models::make_two_server_with_notification(); }},
      {"two_server_terminate_short",
       [] { return models::make_two_server_without_notification(10.0); }},
      {"two_server_terminate_long",
       [] { return models::make_two_server_without_notification(21600.0); }},
      {"two_server_noisy",
       [] {
         models::TwoServerParams p;
         p.coverage = 0.7;
         p.false_positive = 0.2;
         return models::make_two_server_without_notification(100.0, p);
       }},
      {"emn_default", [] { return models::make_emn_recovery_model(); }},
      {"emn_short_top",
       [] {
         models::EmnConfig c;
         c.operator_response_time = 600.0;
         return models::make_emn_recovery_model(c);
       }},
      {"emn_noisy_monitors",
       [] {
         models::EmnConfig c;
         c.ping_coverage = 0.8;
         c.ping_false_positive = 0.05;
         c.path_coverage = 0.8;
         c.path_false_positive = 0.05;
         return models::make_emn_recovery_model(c);
       }},
  };
}

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

class BoundPropertyTest : public ::testing::TestWithParam<ModelCase> {
 protected:
  BoundPropertyTest() : model_(GetParam().make()) {}
  Pomdp model_;
};

TEST_P(BoundPropertyTest, SatisfiesRecoveryConditions) {
  EXPECT_TRUE(check_condition1(model_).satisfied);
  EXPECT_TRUE(check_condition2(model_.mdp()).satisfied);
}

TEST_P(BoundPropertyTest, RaBoundConvergesAndIsNonPositive) {
  const auto ra = compute_ra_bound(model_.mdp());
  ASSERT_TRUE(ra.converged());
  for (StateId s = 0; s < model_.num_states(); ++s) {
    EXPECT_LE(ra.values[s], 1e-9) << model_.mdp().state_name(s);
  }
}

TEST_P(BoundPropertyTest, RaBoundBelowQmdpStatewise) {
  const auto ra = compute_ra_bound(model_.mdp());
  const auto qmdp = compute_qmdp_bound(model_.mdp());
  ASSERT_TRUE(ra.converged());
  ASSERT_TRUE(qmdp.converged());
  for (StateId s = 0; s < model_.num_states(); ++s) {
    EXPECT_LE(ra.values[s], qmdp.values[s] + 1e-8) << model_.mdp().state_name(s);
  }
}

TEST_P(BoundPropertyTest, LpMonotonicityAtRandomBeliefs) {
  // Lemma 3.1 numerically: V_B^- <= L_p V_B^- with B = {RA}.
  const BoundSet set = make_ra_bound_set(model_.mdp());
  const LeafEvaluator leaf = [&](const Belief& b) {
    return set.evaluate(b.probabilities());
  };
  Rng rng(101);
  for (int i = 0; i < 25; ++i) {
    const Belief pi = random_belief(model_.num_states(), rng);
    EXPECT_LE(set.evaluate(pi.probabilities()), apply_lp(model_, pi, leaf) + 1e-6);
  }
}

TEST_P(BoundPropertyTest, IncrementalUpdatesMonotoneAndBounded) {
  BoundSet set = make_ra_bound_set(model_.mdp());
  const auto qmdp = compute_qmdp_bound(model_.mdp());
  ASSERT_TRUE(qmdp.converged());
  Rng rng(77);
  const Belief probe = random_belief(model_.num_states(), rng);
  double prev = set.evaluate(probe.probabilities());
  for (int i = 0; i < 20; ++i) {
    improve_at(model_, set, random_belief(model_.num_states(), rng));
    improve_at(model_, set, probe);
    const double now = set.evaluate(probe.probabilities());
    EXPECT_GE(now + 1e-9, prev);
    EXPECT_LE(now, qmdp.evaluate(probe.probabilities()) + 1e-6);
    prev = now;
  }
}

TEST_P(BoundPropertyTest, LpMonotonicityAfterImprovement) {
  // Property 1(b) must survive bound growth.
  BoundSet set = make_ra_bound_set(model_.mdp());
  Rng rng(55);
  for (int i = 0; i < 10; ++i) {
    improve_at(model_, set, random_belief(model_.num_states(), rng));
  }
  const LeafEvaluator leaf = [&](const Belief& b) {
    return set.evaluate(b.probabilities());
  };
  for (int i = 0; i < 15; ++i) {
    const Belief pi = random_belief(model_.num_states(), rng);
    EXPECT_LE(set.evaluate(pi.probabilities()), apply_lp(model_, pi, leaf) + 1e-6);
  }
}

TEST_P(BoundPropertyTest, FiniteHorizonValuesSandwichTheBound) {
  // Zero-leaf depth-d values upper-bound V*, hence the RA bound too.
  const BoundSet set = make_ra_bound_set(model_.mdp());
  const LeafEvaluator zero = [](const Belief&) { return 0.0; };
  Rng rng(31);
  // Exact (unpruned) expansion; deep trees only on the tiny models.
  const int max_depth = model_.num_states() <= 4 ? 3 : 1;
  for (int i = 0; i < 8; ++i) {
    const Belief pi = random_belief(model_.num_states(), rng);
    const double lower = set.evaluate(pi.probabilities());
    for (int depth = 0; depth <= max_depth; ++depth) {
      EXPECT_LE(lower, bellman_value(model_, pi, depth, zero) + 1e-6);
    }
  }
}

TEST_P(BoundPropertyTest, SawtoothStaysAboveLowerBoundUnderJointRefinement) {
  // The §6 extension must preserve the sandwich on every model: refining
  // both bound families never lets them cross.
  BoundSet lower = make_ra_bound_set(model_.mdp());
  SawtoothUpperBound upper(model_);
  Rng rng(911);
  for (int i = 0; i < 12; ++i) {
    const Belief pi = random_belief(model_.num_states(), rng);
    improve_at(model_, lower, pi);
    upper.improve_at(pi);
  }
  for (int i = 0; i < 25; ++i) {
    const Belief pi = random_belief(model_.num_states(), rng);
    EXPECT_GE(upper.evaluate(pi) + 1e-6, lower.evaluate(pi.probabilities()));
    EXPECT_LE(upper.evaluate(pi), 1e-6);  // Condition 2: V* <= 0
  }
}

TEST_P(BoundPropertyTest, SawtoothImprovementIsMonotone) {
  SawtoothUpperBound upper(model_);
  Rng rng(313);
  const Belief probe = random_belief(model_.num_states(), rng);
  double prev = upper.evaluate(probe);
  for (int i = 0; i < 10; ++i) {
    upper.improve_at(random_belief(model_.num_states(), rng));
    upper.improve_at(probe);
    const double now = upper.evaluate(probe);
    EXPECT_LE(now, prev + 1e-9);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(RecoveryModels, BoundPropertyTest,
                         ::testing::ValuesIn(model_zoo()),
                         [](const ::testing::TestParamInfo<ModelCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace recoverd::bounds
