// Fault-tolerant fleet runtime suite (DESIGN.md §14): the per-session guard
// ladder must isolate chaos-injected faults (decide stalls, belief
// poisoning, corrupted observation ids) to the afflicted lane, the
// deterministic admission quota must shed load in staleness order, and —
// the load-bearing property — every bitwise contract of the clean fleet
// (Batch ≡ Loop, across --jobs, scalar ≡ auto kernels) must keep holding
// with guards, chaos, and deterministic budgets all enabled.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "models/emn.hpp"
#include "pomdp/belief.hpp"
#include "sim/fleet_driver.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace recoverd::sim {
namespace {

struct EmnFleet {
  Pomdp base;
  Pomdp recovery;
  models::EmnIds ids;
  FaultInjector injector;
  bounds::BoundSet set;

  EmnFleet()
      : base(models::make_emn_base()),
        recovery(models::make_emn_recovery_model()),
        ids(models::emn_ids(base)),
        injector(std::vector<StateId>(ids.topo.zombie_states.begin(),
                                      ids.topo.zombie_states.end())),
        set(bounds::make_ra_bound_set(recovery.mdp(), 32)) {
    controller::BootstrapOptions boot;
    boot.iterations = 4;
    boot.tree_depth = 2;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = 7;
    boot.branch_floor = 1e-2;
    controller::bootstrap_bounds(recovery, set,
                                 Belief::uniform(recovery.num_states()), boot);
  }
};

EmnFleet& emn() {
  static EmnFleet* fleet = new EmnFleet();
  return *fleet;
}

FleetOptions make_options(std::size_t sessions, FleetMode mode) {
  FleetOptions options;
  options.sessions = sessions;
  options.mode = mode;
  options.observe_action = emn().ids.topo.observe_action;
  options.tree_depth = 1;
  options.branch_floor = 1e-2;
  options.max_steps = 10000;
  return options;
}

// A configuration that exercises every resilience mechanism at once: guard
// ladder with fast hysteresis, livelock monitor, all three chaos axes, and
// a deterministic admission quota.
FleetOptions make_resilient_options(std::size_t sessions, FleetMode mode) {
  FleetOptions options = make_options(sessions, mode);
  options.guard.enabled = true;
  options.guard.promote_after = 2;
  options.guard.livelock_window = 16;
  options.chaos.stall_rate = 0.3;
  options.chaos.stall_ms = 0.1;  // unguarded spins must not slow the suite
  options.chaos.obs_corrupt_rate = 0.3;
  options.chaos.poison_rate = 0.3;
  options.tick_budget_decisions = sessions / 2;
  return options;
}

FleetDriver make_fleet(FleetOptions options, std::uint64_t seed = 41) {
  EmnFleet& f = emn();
  return FleetDriver(f.recovery, f.base, f.set, f.injector, seed, options);
}

// The fleet parity contract extended to the resilience counters: belief
// bits, last actions, episode tallies, and every guard/chaos/shed counter
// equal — classes/shared_hits excluded (Batch-mode work accounting).
void expect_fleets_bitwise_equal(const FleetDriver& a, const FleetDriver& b,
                                 std::size_t tick) {
  ASSERT_EQ(a.sessions(), b.sessions());
  const std::size_t num_states = a.beliefs().num_states();
  for (StateId s = 0; s < num_states; ++s) {
    const auto lanes_a = a.beliefs().state_lanes(s);
    const auto lanes_b = b.beliefs().state_lanes(s);
    ASSERT_EQ(std::memcmp(lanes_a.data(), lanes_b.data(),
                          a.sessions() * sizeof(double)),
              0)
        << "belief bits diverged at tick " << tick << ", state " << s;
  }
  const auto actions_a = a.last_actions();
  const auto actions_b = b.last_actions();
  ASSERT_TRUE(std::equal(actions_a.begin(), actions_a.end(), actions_b.begin()))
      << "actions diverged at tick " << tick;
  const auto stages_a = a.ladder_stages();
  const auto stages_b = b.ladder_stages();
  ASSERT_TRUE(std::equal(stages_a.begin(), stages_a.end(), stages_b.begin()))
      << "ladder stages diverged at tick " << tick;
  const FleetStats& sa = a.stats();
  const FleetStats& sb = b.stats();
  EXPECT_EQ(sa.ticks, sb.ticks);
  EXPECT_EQ(sa.decisions, sb.decisions) << "tick " << tick;
  EXPECT_EQ(sa.episodes_completed, sb.episodes_completed) << "tick " << tick;
  EXPECT_EQ(sa.episodes_recovered, sb.episodes_recovered) << "tick " << tick;
  EXPECT_EQ(sa.episodes_truncated, sb.episodes_truncated) << "tick " << tick;
  EXPECT_EQ(sa.belief_mismatches, sb.belief_mismatches) << "tick " << tick;
  EXPECT_EQ(sa.degraded_decides, sb.degraded_decides) << "tick " << tick;
  EXPECT_EQ(sa.reduced_decides, sb.reduced_decides) << "tick " << tick;
  EXPECT_EQ(sa.cached_fallbacks, sb.cached_fallbacks) << "tick " << tick;
  EXPECT_EQ(sa.heuristic_fallbacks, sb.heuristic_fallbacks) << "tick " << tick;
  EXPECT_EQ(sa.shed, sb.shed) << "tick " << tick;
  EXPECT_EQ(sa.stalls_injected, sb.stalls_injected) << "tick " << tick;
  EXPECT_EQ(sa.poisons_injected, sb.poisons_injected) << "tick " << tick;
  EXPECT_EQ(sa.beliefs_repaired, sb.beliefs_repaired) << "tick " << tick;
  EXPECT_EQ(sa.obs_corrupted, sb.obs_corrupted) << "tick " << tick;
  EXPECT_EQ(sa.obs_invalid_rejected, sb.obs_invalid_rejected) << "tick " << tick;
  EXPECT_EQ(sa.livelock_respawns, sb.livelock_respawns) << "tick " << tick;
  EXPECT_EQ(sa.ladder_demotions, sb.ladder_demotions) << "tick " << tick;
  EXPECT_EQ(sa.ladder_promotions, sb.ladder_promotions) << "tick " << tick;
}

bool all_lanes_normalized(const FleetDriver& fleet) {
  const std::size_t num_states = fleet.beliefs().num_states();
  std::vector<double> sums(fleet.sessions(), 0.0);
  for (StateId s = 0; s < num_states; ++s) {
    const auto lanes = fleet.beliefs().state_lanes(s);
    for (std::size_t lane = 0; lane < fleet.sessions(); ++lane) {
      if (!std::isfinite(lanes[lane]) || lanes[lane] < 0.0) return false;
      sums[lane] += lanes[lane];
    }
  }
  for (const double sum : sums) {
    if (std::fabs(sum - 1.0) > 1e-9) return false;
  }
  return true;
}

struct SimdModeGuard {
  ~SimdModeGuard() { simd::configure("auto"); }
};

// ---- fault isolation ----------------------------------------------------

TEST(FleetGuardTest, GuardOnCleanFleetIsByteIdenticalToGuardOff) {
  // With no chaos and no budget, enabling the guard must not move a single
  // bit: the hygiene scan finds nothing, the ladder never demotes, and the
  // decide path is the exact pre-guard one.
  FleetOptions guarded = make_options(16, FleetMode::Batch);
  guarded.guard.enabled = true;
  guarded.guard.livelock_window = 64;
  FleetDriver with_guard = make_fleet(guarded);
  FleetDriver without_guard = make_fleet(make_options(16, FleetMode::Batch));
  for (std::size_t tick = 1; tick <= 6; ++tick) {
    with_guard.tick();
    without_guard.tick();
    expect_fleets_bitwise_equal(with_guard, without_guard, tick);
  }
  EXPECT_EQ(with_guard.stats().degraded_decides, 0u);
  EXPECT_EQ(with_guard.stats().ladder_demotions, 0u);
  EXPECT_EQ(with_guard.stats().beliefs_repaired, 0u);
}

TEST(FleetGuardTest, StalledSessionsDegradeAloneAndRecover) {
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.guard.enabled = true;
  options.guard.promote_after = 2;
  options.chaos.stall_rate = 0.3;
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 12; ++tick) fleet.tick();

  const FleetStats& stats = fleet.stats();
  EXPECT_GT(stats.stalls_injected, 0u);
  // A stalled lane never solves that tick: it falls back and demotes alone.
  EXPECT_GT(stats.degraded_decides, 0u);
  EXPECT_GT(stats.ladder_demotions, 0u);
  // With p = 0.3 stalls and promote_after = 2, clean streaks happen too.
  EXPECT_GT(stats.ladder_promotions, 0u);
  EXPECT_LE(stats.ladder_promotions, stats.ladder_demotions);
  // Degradation is per-lane, not fleet-wide: plenty of full solves remain.
  EXPECT_GT(stats.decisions, stats.degraded_decides);
  EXPECT_TRUE(all_lanes_normalized(fleet));
}

TEST(FleetGuardTest, PoisonedLanesAreQuarantinedToThePrior) {
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.guard.enabled = true;
  options.chaos.poison_rate = 0.5;
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 10; ++tick) {
    fleet.tick();
    // The hygiene scan runs at the top of every decide phase, so no NaN or
    // denormal survives into a solve, an update, or this assertion.
    ASSERT_TRUE(all_lanes_normalized(fleet)) << "tick " << tick;
  }
  EXPECT_GT(fleet.stats().poisons_injected, 0u);
  EXPECT_GT(fleet.stats().beliefs_repaired, 0u);
  EXPECT_LE(fleet.stats().beliefs_repaired, fleet.stats().poisons_injected);
  EXPECT_GT(fleet.stats().ladder_demotions, 0u);
}

TEST(FleetGuardTest, UnguardedPoisonTakesDownTheWholeBatch) {
  // The failure mode the hygiene scan exists for: without the guard a
  // single NaN-poisoned lane flows into the batched Bayes update and the
  // posterior-normalisation invariant aborts the whole lock-step tick —
  // one bad session takes all sixteen down with it.
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.chaos.poison_rate = 0.5;
  FleetDriver fleet = make_fleet(options);
  EXPECT_THROW(
      {
        for (std::size_t tick = 0; tick < 10; ++tick) fleet.tick();
      },
      PreconditionError);
  EXPECT_GT(fleet.stats().poisons_injected, 0u);
  EXPECT_EQ(fleet.stats().beliefs_repaired, 0u);
}

TEST(FleetGuardTest, CorruptedObservationIdsAreDetectedAndRejected) {
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.chaos.obs_corrupt_rate = 0.5;
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 12; ++tick) {
    fleet.tick();
    ASSERT_TRUE(all_lanes_normalized(fleet)) << "tick " << tick;
  }
  const FleetStats& stats = fleet.stats();
  EXPECT_GT(stats.obs_corrupted, 0u);
  // The out-of-range half must be caught before indexing anything; the
  // in-range half surfaces as zero-likelihood mismatches at worst.
  EXPECT_GT(stats.obs_invalid_rejected, 0u);
  EXPECT_LE(stats.obs_invalid_rejected, stats.obs_corrupted);
}

TEST(FleetGuardTest, LivelockedSessionsAreEscalatedAndRespawned) {
  FleetOptions options = make_options(12, FleetMode::Batch);
  options.guard.enabled = true;
  options.guard.livelock_window = 2;
  // An improvement bar nothing can clear: every fresh decision counts as
  // stalled, so every session escalates after `window` decides.
  options.guard.livelock_min_improvement = 1e18;
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 8; ++tick) fleet.tick();
  EXPECT_GT(fleet.stats().livelock_respawns, 0u);
  // Escalation terminates the episode (operator hand-off), it does not
  // truncate it.
  EXPECT_GE(fleet.stats().episodes_completed, fleet.stats().livelock_respawns);
  EXPECT_EQ(fleet.sessions(), 12u);
}

// ---- overload control ---------------------------------------------------

TEST(FleetGuardTest, DeterministicQuotaShedsExcessLoad) {
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.tick_budget_decisions = 4;
  FleetDriver fleet = make_fleet(options);
  const std::size_t ticks = 8;
  for (std::size_t tick = 0; tick < ticks; ++tick) fleet.tick();
  const FleetStats& stats = fleet.stats();
  // At most `quota` fresh decisions per tick; everything else shed to a
  // fallback action (no guard: shed lanes keep stage Full).
  EXPECT_LE(stats.decisions, 4u * ticks);
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.shed, stats.degraded_decides);
  EXPECT_EQ(stats.cached_fallbacks + stats.heuristic_fallbacks, stats.shed);
  EXPECT_EQ(stats.ladder_demotions, 0u);
  // Every slot still acts every tick: decisions + fallbacks + respawn
  // terminations cover the full width.
  EXPECT_GE(stats.decisions + stats.degraded_decides + stats.episodes_completed,
            16u * ticks);
}

TEST(FleetGuardTest, SheddingAdmitsMostStaleLanesFirst) {
  // Quota 8 of 16: in steady state lanes must alternate admitted/shed, so
  // after any two consecutive ticks every lane was admitted at least once —
  // visible as: no lane repeats a stale fallback action more than
  // promote-free logic allows. We check the aggregate fairness signature:
  // shed spread evenly means cached fallbacks, not heuristic ones (every
  // lane always has a previous action to repeat after its admitted tick).
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.tick_budget_decisions = 8;
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 10; ++tick) fleet.tick();
  const FleetStats& stats = fleet.stats();
  EXPECT_GT(stats.shed, 0u);
  // Staleness-ordered admission: a lane shed on tick t is most-stale on
  // t+1 and admitted, so no lane is ever shed twice in a row while another
  // is admitted twice in a row — heuristic fallbacks can only come from
  // freshly respawned lanes (no previous action), not from starvation.
  EXPECT_GE(stats.cached_fallbacks, stats.heuristic_fallbacks);
}

TEST(FleetGuardTest, WallClockBudgetEngagesShedding) {
  // The EWMA-driven budget is timing-dependent (excluded from the bitwise
  // contracts), so only its effect is asserted: an absurdly small budget
  // must start shedding once the estimator warms up, and the fleet must
  // keep ticking correctly throughout.
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.decision_cache = false;  // keep real solves flowing into the EWMA
  options.tick_budget_ms = 1e-6;
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 12; ++tick) fleet.tick();
  EXPECT_GT(fleet.stats().shed, 0u);
  EXPECT_TRUE(all_lanes_normalized(fleet));
}

// ---- bitwise contracts under chaos --------------------------------------

TEST(FleetGuardParityTest, BatchMatchesLoopUnderChaosGuardsAndBudget) {
  FleetDriver batch = make_fleet(make_resilient_options(24, FleetMode::Batch));
  FleetDriver loop = make_fleet(make_resilient_options(24, FleetMode::Loop));
  expect_fleets_bitwise_equal(batch, loop, 0);
  for (std::size_t tick = 1; tick <= 8; ++tick) {
    batch.tick();
    loop.tick();
    expect_fleets_bitwise_equal(batch, loop, tick);
  }
  // The run must actually have exercised the machinery it claims to cover.
  EXPECT_GT(batch.stats().stalls_injected, 0u);
  EXPECT_GT(batch.stats().poisons_injected, 0u);
  EXPECT_GT(batch.stats().obs_corrupted, 0u);
  EXPECT_GT(batch.stats().shed, 0u);
  EXPECT_GT(batch.stats().ladder_demotions, 0u);
}

TEST(FleetGuardParityTest, RootJobsInvariantUnderChaosAndGuards) {
  FleetOptions serial = make_resilient_options(24, FleetMode::Batch);
  FleetOptions parallel = serial;
  parallel.root_jobs = 4;
  FleetDriver one = make_fleet(serial);
  FleetDriver four = make_fleet(parallel);
  for (std::size_t tick = 1; tick <= 6; ++tick) {
    one.tick();
    four.tick();
    expect_fleets_bitwise_equal(one, four, tick);
  }
}

TEST(FleetGuardParityTest, ScalarMatchesAutoKernelsUnderChaosAndGuards) {
  SimdModeGuard guard;
  simd::configure("scalar");
  FleetDriver scalar = make_fleet(make_resilient_options(16, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 6; ++tick) scalar.tick();

  simd::configure("auto");
  FleetDriver vectorized = make_fleet(make_resilient_options(16, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 6; ++tick) vectorized.tick();

  expect_fleets_bitwise_equal(scalar, vectorized, 6);
}

TEST(FleetGuardParityTest, DecisionCacheStaysExactUnderChaosAndGuards) {
  FleetOptions cached = make_resilient_options(24, FleetMode::Batch);
  FleetOptions uncached = cached;
  uncached.decision_cache = false;
  FleetDriver with_cache = make_fleet(cached);
  FleetDriver without_cache = make_fleet(uncached);
  for (std::size_t tick = 1; tick <= 8; ++tick) {
    with_cache.tick();
    without_cache.tick();
    expect_fleets_bitwise_equal(with_cache, without_cache, tick);
  }
}

// ---- flag parsing -------------------------------------------------------

TEST(FleetGuardTest, ResilienceFlagsParseAndValidate) {
  const char* argv[] = {"test",
                        "--fleet-guard",
                        "--fleet-reduced-depth=2",
                        "--fleet-promote-after=3",
                        "--fleet-livelock-window=32",
                        "--tick-budget-decisions=100",
                        "--chaos-stall-rate=0.25",
                        "--chaos-poison=0.1"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  args.require_known(fleet_resilience_flag_names());
  FleetOptions options;
  apply_fleet_resilience_flags(args, options);
  EXPECT_TRUE(options.guard.enabled);
  EXPECT_EQ(options.guard.reduced_depth, 2);
  EXPECT_EQ(options.guard.promote_after, 3u);
  EXPECT_EQ(options.guard.livelock_window, 32u);
  EXPECT_EQ(options.tick_budget_decisions, 100u);
  EXPECT_DOUBLE_EQ(options.chaos.stall_rate, 0.25);
  EXPECT_DOUBLE_EQ(options.chaos.poison_rate, 0.1);
  EXPECT_TRUE(options.chaos.enabled());

  const char* bad_rate[] = {"test", "--chaos-stall-rate=1.5"};
  const CliArgs bad_args(2, bad_rate);
  FleetOptions scratch;
  EXPECT_THROW(apply_fleet_resilience_flags(bad_args, scratch), PreconditionError);

  const char* bad_depth[] = {"test", "--fleet-reduced-depth=0"};
  const CliArgs bad_depth_args(2, bad_depth);
  EXPECT_THROW(apply_fleet_resilience_flags(bad_depth_args, scratch),
               PreconditionError);
}

}  // namespace
}  // namespace recoverd::sim
