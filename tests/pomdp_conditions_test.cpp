#include "pomdp/conditions.hpp"

#include <gtest/gtest.h>

#include "models/two_server.hpp"
#include "pomdp/transforms.hpp"
#include "util/check.hpp"

namespace recoverd {
namespace {

// A model where one state cannot reach the goal under any action.
Mdp make_trapped_model() {
  MdpBuilder b;
  const StateId good = b.add_state("good", 0.0);
  const StateId bad = b.add_state("bad", -1.0);
  const StateId trap = b.add_state("trap", -1.0);
  const ActionId act = b.add_action("act", 1.0);
  b.set_transition(good, act, good, 1.0);
  b.set_transition(bad, act, good, 1.0);
  b.set_transition(trap, act, trap, 1.0);
  b.mark_goal(good);
  return b.build();
}

TEST(Condition1, SatisfiedOnTwoServerModel) {
  const Pomdp p = models::make_two_server();
  const auto report = check_condition1(p.mdp());
  EXPECT_TRUE(report.satisfied) << report.detail;
  EXPECT_TRUE(unrecoverable_states(p.mdp()).empty());
}

TEST(Condition1, DetectsEmptyGoalSet) {
  MdpBuilder b;
  const StateId s = b.add_state("s");
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s, a, s, 1.0);
  const auto report = check_condition1(b.build());
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.detail.find("empty"), std::string::npos);
}

TEST(Condition1, DetectsUnrecoverableState) {
  const Mdp m = make_trapped_model();
  const auto report = check_condition1(m);
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.detail.find("trap"), std::string::npos);
  const auto bad = unrecoverable_states(m);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(m.state_name(bad[0]), "trap");
}

TEST(Condition2, SatisfiedByBuilderEnforcedModels) {
  const Pomdp p = models::make_two_server();
  EXPECT_TRUE(check_condition2(p.mdp()).satisfied);
}

TEST(RecoveryNotificationDetector, NoisyMonitorsMeanNoNotification) {
  // The two-server model's monitor has false positives and negatives, so
  // goal and fault states can emit the same observations.
  const Pomdp p = models::make_two_server();
  EXPECT_FALSE(detect_recovery_notification(p));
}

TEST(RecoveryNotificationDetector, PerfectMonitorsMeanNotification) {
  models::TwoServerParams params;
  params.coverage = 1.0;
  params.false_positive = 0.0;
  const Pomdp p = models::make_two_server(params);
  EXPECT_TRUE(detect_recovery_notification(p));
}

TEST(NotificationTransform, GoalStatesBecomeAbsorbingZeroReward) {
  const Pomdp base = models::make_two_server();
  const Pomdp p = with_recovery_notification(base);
  const auto ids = models::two_server_ids(p);
  const Mdp& m = p.mdp();
  for (ActionId a = 0; a < m.num_actions(); ++a) {
    EXPECT_DOUBLE_EQ(m.transition_prob(ids.null_state, a, ids.null_state), 1.0);
    EXPECT_DOUBLE_EQ(m.reward(ids.null_state, a), 0.0);
  }
  // Fault dynamics are untouched.
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.fault_a, ids.restart_a, ids.null_state), 1.0);
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_a, ids.restart_b), -1.0);
  // Observations preserved.
  EXPECT_DOUBLE_EQ(p.observation_prob(ids.fault_a, ids.observe, ids.alarm_a), 0.9);
}

TEST(TerminateTransform, AddsAbsorbingStateAndTerminationRewards) {
  const double t_op = 100.0;
  const Pomdp p = models::make_two_server_without_notification(t_op);
  ASSERT_TRUE(p.has_terminate_action());
  const ActionId at = p.terminate_action();
  const StateId st = p.terminate_state();
  const auto ids = models::two_server_ids(p);
  const Mdp& m = p.mdp();

  EXPECT_EQ(m.num_states(), 4u);
  EXPECT_EQ(m.num_actions(), 4u);
  EXPECT_EQ(p.num_observations(), 4u);

  // aT maps everything to sT.
  for (StateId s = 0; s < m.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(m.transition_prob(s, at, st), 1.0);
  }
  // Termination rewards: r(s, aT) = rate(s) * t_op, zero at goals and sT.
  EXPECT_DOUBLE_EQ(m.reward(ids.null_state, at), 0.0);
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_a, at), -0.5 * t_op);
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_b, at), -0.5 * t_op);
  EXPECT_DOUBLE_EQ(m.reward(st, at), 0.0);

  // sT absorbing with zero reward under every action.
  for (ActionId a = 0; a < m.num_actions(); ++a) {
    EXPECT_DOUBLE_EQ(m.transition_prob(st, a, st), 1.0);
    EXPECT_DOUBLE_EQ(m.reward(st, a), 0.0);
  }

  // sT emits the dedicated observation deterministically.
  const ObsId term_obs = p.find_observation("terminated");
  ASSERT_NE(term_obs, kInvalidId);
  for (ActionId a = 0; a < m.num_actions(); ++a) {
    EXPECT_DOUBLE_EQ(p.observation_prob(st, a, term_obs), 1.0);
  }

  // Original dynamics and rewards preserved.
  EXPECT_DOUBLE_EQ(m.transition_prob(ids.fault_a, ids.restart_a, ids.null_state), 1.0);
  EXPECT_DOUBLE_EQ(m.reward(ids.fault_a, ids.restart_b), -1.0);
}

TEST(TerminateTransform, RejectsDoubleApplication) {
  const Pomdp p = models::make_two_server_without_notification(10.0);
  EXPECT_THROW(add_termination(p, 10.0), PreconditionError);
}

TEST(TerminateTransform, RejectsNonPositiveResponseTime) {
  const Pomdp p = models::make_two_server();
  EXPECT_THROW(add_termination(p, 0.0), PreconditionError);
  EXPECT_THROW(add_termination(p, -5.0), PreconditionError);
}

TEST(Transforms, CopyRoundTripPreservesModel) {
  const Pomdp src = models::make_two_server();
  PomdpBuilder b;
  detail::copy_pomdp_into_builder(src, b);
  const Pomdp copy = b.build();
  ASSERT_EQ(copy.num_states(), src.num_states());
  ASSERT_EQ(copy.num_actions(), src.num_actions());
  ASSERT_EQ(copy.num_observations(), src.num_observations());
  for (ActionId a = 0; a < src.num_actions(); ++a) {
    EXPECT_DOUBLE_EQ(copy.mdp().duration(a), src.mdp().duration(a));
    for (StateId s = 0; s < src.num_states(); ++s) {
      EXPECT_DOUBLE_EQ(copy.mdp().reward(s, a), src.mdp().reward(s, a));
      for (StateId t = 0; t < src.num_states(); ++t) {
        EXPECT_DOUBLE_EQ(copy.mdp().transition_prob(s, a, t),
                         src.mdp().transition_prob(s, a, t));
      }
      for (ObsId o = 0; o < src.num_observations(); ++o) {
        EXPECT_DOUBLE_EQ(copy.observation_prob(s, a, o), src.observation_prob(s, a, o));
      }
    }
  }
}

}  // namespace
}  // namespace recoverd
