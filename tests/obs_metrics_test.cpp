#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace recoverd::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set(7.0);  // last write wins, not accumulation
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketAssignmentIsInclusiveUpperBound) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.buckets(), 4u);  // three bounds + overflow
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0: x <= uppers[0]
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 5.0);
  EXPECT_THROW(h.bucket_count(4), PreconditionError);
}

TEST(Histogram, EmptyReportsZeroMinMaxMean) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ResetClearsValuesButKeepsBuckets) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  for (std::size_t i = 0; i < h.buckets(); ++i) EXPECT_EQ(h.bucket_count(i), 0u);
  EXPECT_EQ(h.uppers(), (std::vector<double>{1.0, 2.0}));
  h.observe(1.5);  // usable after reset
  EXPECT_EQ(h.bucket_count(1), 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               PreconditionError);
}

TEST(BucketHelpers, ExponentialAndLinear) {
  EXPECT_EQ(exponential_buckets(1.0, 2.0, 4), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(linear_buckets(-1.0, 0.5, 3), (std::vector<double>{-1.0, -0.5, 0.0}));
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 4), PreconditionError);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(exponential_buckets(1.0, 2.0, 0), PreconditionError);
  EXPECT_THROW(linear_buckets(0.0, 0.0, 4), PreconditionError);
  EXPECT_THROW(linear_buckets(0.0, 1.0, 0), PreconditionError);
}

TEST(MetricsRegistry, InternsByName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Histogram& h1 = reg.histogram("x.hist", {1.0, 2.0});
  Histogram& h2 = reg.histogram("x.hist", {1.0, 2.0});  // identical bounds OK
  Histogram& h3 = reg.histogram("x.hist", {});           // empty = "whatever exists"
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(&h1, &h3);
  EXPECT_THROW(reg.histogram("x.hist", {1.0, 3.0}), PreconditionError);
}

TEST(MetricsRegistry, RejectsCrossKindCollisions) {
  MetricsRegistry reg;
  reg.counter("a");
  reg.gauge("b");
  reg.histogram("c", {1.0});
  EXPECT_THROW(reg.gauge("a"), PreconditionError);
  EXPECT_THROW(reg.histogram("a", {1.0}), PreconditionError);
  EXPECT_THROW(reg.counter("b"), PreconditionError);
  EXPECT_THROW(reg.histogram("b", {1.0}), PreconditionError);
  EXPECT_THROW(reg.counter("c"), PreconditionError);
  EXPECT_THROW(reg.gauge("c"), PreconditionError);
}

TEST(MetricsRegistry, SnapshotIsOrderedAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.late").add(2);
  reg.counter("a.early").add(1);
  reg.gauge("g.one").set(0.25);
  Histogram& h = reg.histogram("h.one", {1.0, 2.0});
  h.observe(1.5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.early");  // sorted by name
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "z.late");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSample& hs = snap.histograms[0];
  EXPECT_EQ(hs.uppers.size() + 1, hs.counts.size());
  EXPECT_EQ(hs.counts, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(hs.count, 1u);
  EXPECT_DOUBLE_EQ(hs.sum, 1.5);
}

TEST(MetricsRegistry, ResetKeepsRegistrationsValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("keep.me");
  Gauge& g = reg.gauge("keep.gauge");
  Histogram& h = reg.histogram("keep.hist", {1.0});
  c.add(10);
  g.set(5.0);
  h.observe(0.5);
  reg.reset();
  // Cached references survive reset and still point at the live instruments.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("keep.me").value(), 1u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(GlobalRegistry, IsASingleton) {
  EXPECT_EQ(&metrics(), &metrics());
}

TEST(ScopedTimer, RecordsOnDestructionAndStop) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("timer.test_ms", exponential_buckets(0.001, 10.0, 8));
  {
    ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);

  ScopedTimer t(h);
  const double ms = t.stop();
  EXPECT_GE(ms, 0.0);
  EXPECT_EQ(h.count(), 2u);
  // stop() flushes; a second stop (and destruction) must not double-record.
  EXPECT_DOUBLE_EQ(t.stop(), 0.0);
  EXPECT_EQ(h.count(), 2u);
}

}  // namespace
}  // namespace recoverd::obs
