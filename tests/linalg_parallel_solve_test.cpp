// Determinism and parity of the parallel topology-aware solver: the SCC
// level-scheduled solve must match the sequential global sweep within
// tolerance on a broad sweep of seeded synthetic recovery models, and must
// be *bitwise identical* for every worker count — the contract that makes
// `--solver-jobs` safe to flip on reproduction runs. Suite names contain
// "Parallel" so tools/check.sh can select them for the TSan pass.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "bounds/ra_bound.hpp"
#include "linalg/gauss_seidel.hpp"
#include "models/synthetic.hpp"

namespace recoverd {
namespace {

using bounds::RandomActionChain;
using bounds::build_random_action_chain;
using linalg::GaussSeidelOptions;
using linalg::SccSolveOptions;
using linalg::SparseMatrix;

models::SyntheticMdpParams sweep_params(std::uint64_t seed) {
  // Rotate through the three topology regimes the generator supports:
  // giant coupled SCC (legacy), pure near-DAG, and scattered small SCCs.
  models::SyntheticMdpParams params;
  params.num_states = 300 + (seed * 13) % 500;
  params.num_actions = 4;
  params.branching = 3;
  params.seed = seed + 1;
  switch (seed % 3) {
    case 0: params.locality = 0; break;                              // giant SCC
    case 1: params.locality = 24; params.forward_probability = 0.0; break;  // DAG
    default: params.locality = 24; params.forward_probability = 0.08; break;
  }
  return params;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff = std::max(diff, std::abs(a[i] - b[i]));
  return diff;
}

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact — precisely what the determinism
    // contract promises.
    EXPECT_EQ(a[i], b[i]) << "state " << i;
  }
}

TEST(ParallelSolve, MatchesSequentialAcrossHundredSeededModels) {
  const GaussSeidelOptions options = bounds::default_ra_solver_options();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto mdp = models::make_synthetic_recovery_mdp(sweep_params(seed));
    const RandomActionChain chain = build_random_action_chain(mdp);

    const auto sequential = linalg::solve_fixed_point(chain.q, chain.c, options);
    ASSERT_TRUE(sequential.converged()) << "seed " << seed << ": " << sequential.detail;

    SccSolveOptions serial;
    const auto scc = linalg::solve_fixed_point_scc(chain.q, chain.c, options, serial,
                                                   chain.plan);
    ASSERT_TRUE(scc.converged()) << "seed " << seed << ": " << scc.detail;
    EXPECT_LE(max_abs_diff(sequential.x, scc.x), 1e-8) << "seed " << seed;

    // Worker count must not change a single bit of the solution.
    SccSolveOptions parallel;
    parallel.jobs = 4;
    const auto fanned = linalg::solve_fixed_point_scc(chain.q, chain.c, options,
                                                      parallel, chain.plan);
    ASSERT_TRUE(fanned.converged()) << "seed " << seed;
    expect_bitwise_equal(scc.x, fanned.x);
  }
}

TEST(ParallelSolve, BitwiseInvariantAcrossJobCounts) {
  // One model large enough to carry wide levels and nontrivial components,
  // swept across several worker counts.
  models::SyntheticMdpParams params;
  params.num_states = 5000;
  params.num_actions = 4;
  params.locality = 32;
  params.forward_probability = 0.05;
  params.seed = 42;
  const auto mdp = models::make_synthetic_recovery_mdp(params);
  const RandomActionChain chain = build_random_action_chain(mdp);
  const GaussSeidelOptions options = bounds::default_ra_solver_options();

  SccSolveOptions scc;
  scc.jobs = 1;
  const auto reference = linalg::solve_fixed_point_scc(chain.q, chain.c, options, scc,
                                                       chain.plan);
  ASSERT_TRUE(reference.converged()) << reference.detail;

  for (const std::size_t jobs : {2, 3, 8}) {
    scc.jobs = jobs;
    const auto result = linalg::solve_fixed_point_scc(chain.q, chain.c, options, scc,
                                                      chain.plan);
    ASSERT_TRUE(result.converged()) << "jobs " << jobs;
    EXPECT_EQ(result.iterations, reference.iterations) << "jobs " << jobs;
    expect_bitwise_equal(reference.x, result.x);
  }
}

TEST(ParallelSolve, ChunkedComponentsStayBitwiseInvariant) {
  // Force the chunked large-component path (threshold 8 routes every
  // nontrivial SCC through it) and check the chunk-parallel sweeps remain
  // bitwise deterministic — the grid keys on component size, never jobs.
  models::SyntheticMdpParams params;
  params.num_states = 1500;
  params.num_actions = 4;
  params.locality = 0;  // giant coupled SCC => genuinely chunked sweeps
  params.seed = 7;
  const auto mdp = models::make_synthetic_recovery_mdp(params);
  const RandomActionChain chain = build_random_action_chain(mdp);
  const GaussSeidelOptions options = bounds::default_ra_solver_options();

  SccSolveOptions chunked;
  chunked.block_jacobi_threshold = 8;
  chunked.jobs = 1;
  const auto reference = linalg::solve_fixed_point_scc(chain.q, chain.c, options,
                                                       chunked, chain.plan);
  ASSERT_TRUE(reference.converged()) << reference.detail;

  for (const std::size_t jobs : {2, 5}) {
    chunked.jobs = jobs;
    const auto result = linalg::solve_fixed_point_scc(chain.q, chain.c, options,
                                                      chunked, chain.plan);
    ASSERT_TRUE(result.converged()) << "jobs " << jobs;
    expect_bitwise_equal(reference.x, result.x);
  }

  // And the chunked answer agrees with the default path on the same system.
  const auto plain = linalg::solve_fixed_point_scc(chain.q, chain.c, options, {},
                                                   chain.plan);
  ASSERT_TRUE(plain.converged());
  EXPECT_LE(max_abs_diff(plain.x, reference.x), 1e-8);
}

TEST(ParallelAssembly, ChainBitwiseIdenticalAcrossWorkers) {
  // One-shot CSR assembly merges each row independently in a fixed action
  // order, so any worker count must produce the identical artifact.
  models::SyntheticMdpParams params;
  params.num_states = 2000;
  params.num_actions = 5;
  params.locality = 48;
  params.forward_probability = 0.02;
  params.seed = 11;
  const auto mdp = models::make_synthetic_recovery_mdp(params);

  const RandomActionChain reference = build_random_action_chain(mdp, 1);
  for (const std::size_t jobs : {2, 7}) {
    const RandomActionChain chain = build_random_action_chain(mdp, jobs);
    ASSERT_EQ(chain.num_states(), reference.num_states());
    EXPECT_EQ(chain.num_actions, reference.num_actions);
    expect_bitwise_equal(reference.c, chain.c);
    ASSERT_EQ(chain.q.rows(), reference.q.rows());
    for (std::size_t i = 0; i < reference.q.rows(); ++i) {
      const auto a = reference.q.row(i);
      const auto b = chain.q.row(i);
      ASSERT_EQ(a.size(), b.size()) << "row " << i;
      for (std::size_t e = 0; e < a.size(); ++e) {
        EXPECT_EQ(a[e].col, b[e].col) << "row " << i;
        EXPECT_EQ(a[e].value, b[e].value) << "row " << i;
      }
    }
    EXPECT_EQ(chain.plan.num_components, reference.plan.num_components);
  }
}

TEST(ParallelSolve, RaBoundValuesInvariantAcrossJobs) {
  // End-to-end through the bounds layer: compute_ra_bound on a shared chain
  // must return identical V_m⁻ for every --solver-jobs setting.
  models::SyntheticMdpParams params;
  params.num_states = 3000;
  params.num_actions = 4;
  params.locality = 32;
  params.forward_probability = 0.05;
  params.seed = 23;
  const auto mdp = models::make_synthetic_recovery_mdp(params);
  const RandomActionChain chain = build_random_action_chain(mdp);

  SccSolveOptions scc;
  scc.jobs = 1;
  const auto reference = bounds::compute_ra_bound(chain,
                                                  bounds::default_ra_solver_options(),
                                                  scc);
  ASSERT_TRUE(reference.converged()) << reference.detail;

  for (const std::size_t jobs : {2, 8}) {
    scc.jobs = jobs;
    const auto result = bounds::compute_ra_bound(chain,
                                                 bounds::default_ra_solver_options(),
                                                 scc);
    ASSERT_TRUE(result.converged()) << "jobs " << jobs;
    expect_bitwise_equal(reference.values, result.values);
  }
}

}  // namespace
}  // namespace recoverd
