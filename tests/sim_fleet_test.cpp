// FleetDriver determinism suite (DESIGN.md §13): a Batch fleet and a Loop
// fleet from the same seed must stay bitwise identical — belief bits,
// chosen actions, episode tallies — tick by tick, and the Batch-mode
// cross-tick decision cache and SIMD kernel selection must never change a
// bit either. Runs on the paper's EMN model (zombie injection, terminate
// transform) with a small bootstrapped RA-Bound set, mirroring
// bench/throughput_campaign at test scale.
#include "sim/fleet_driver.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "models/emn.hpp"
#include "pomdp/belief.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace recoverd::sim {
namespace {

struct EmnFleet {
  Pomdp base;
  Pomdp recovery;
  models::EmnIds ids;
  FaultInjector injector;
  bounds::BoundSet set;

  EmnFleet()
      : base(models::make_emn_base()),
        recovery(models::make_emn_recovery_model()),
        ids(models::emn_ids(base)),
        injector(std::vector<StateId>(ids.topo.zombie_states.begin(),
                                      ids.topo.zombie_states.end())),
        set(bounds::make_ra_bound_set(recovery.mdp(), 32)) {
    controller::BootstrapOptions boot;
    boot.iterations = 4;
    boot.tree_depth = 2;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = 7;
    boot.branch_floor = 1e-2;
    controller::bootstrap_bounds(recovery, set,
                                 Belief::uniform(recovery.num_states()), boot);
  }
};

// One warm bound set for the whole suite: the fleet never mutates the
// planes (only evaluate-scratch use counters), so sharing it keeps the
// bootstrap cost out of every test body without coupling their results.
EmnFleet& emn() {
  static EmnFleet* fleet = new EmnFleet();
  return *fleet;
}

FleetOptions make_options(std::size_t sessions, FleetMode mode) {
  FleetOptions options;
  options.sessions = sessions;
  options.mode = mode;
  options.observe_action = emn().ids.topo.observe_action;
  options.tree_depth = 1;
  options.branch_floor = 1e-2;
  options.max_steps = 10000;
  return options;
}

FleetDriver make_fleet(FleetOptions options, std::uint64_t seed = 41) {
  EmnFleet& f = emn();
  return FleetDriver(f.recovery, f.base, f.set, f.injector, seed, options);
}

// The fleet parity contract: belief bits, last actions, and every episode
// tally equal — classes/shared_hits excluded (Batch-mode work accounting).
void expect_fleets_bitwise_equal(const FleetDriver& a, const FleetDriver& b,
                                 std::size_t tick) {
  ASSERT_EQ(a.sessions(), b.sessions());
  const std::size_t num_states = a.beliefs().num_states();
  for (StateId s = 0; s < num_states; ++s) {
    const auto lanes_a = a.beliefs().state_lanes(s);
    const auto lanes_b = b.beliefs().state_lanes(s);
    ASSERT_EQ(std::memcmp(lanes_a.data(), lanes_b.data(),
                          a.sessions() * sizeof(double)),
              0)
        << "belief bits diverged at tick " << tick << ", state " << s;
  }
  const auto actions_a = a.last_actions();
  const auto actions_b = b.last_actions();
  ASSERT_TRUE(std::equal(actions_a.begin(), actions_a.end(), actions_b.begin()))
      << "actions diverged at tick " << tick;
  const FleetStats& sa = a.stats();
  const FleetStats& sb = b.stats();
  EXPECT_EQ(sa.ticks, sb.ticks);
  EXPECT_EQ(sa.decisions, sb.decisions) << "tick " << tick;
  EXPECT_EQ(sa.episodes_completed, sb.episodes_completed) << "tick " << tick;
  EXPECT_EQ(sa.episodes_recovered, sb.episodes_recovered) << "tick " << tick;
  EXPECT_EQ(sa.episodes_truncated, sb.episodes_truncated) << "tick " << tick;
  EXPECT_EQ(sa.belief_mismatches, sb.belief_mismatches) << "tick " << tick;
}

struct SimdModeGuard {
  ~SimdModeGuard() { simd::configure("auto"); }
};

TEST(FleetParityTest, BatchMatchesLoopBitwise) {
  FleetDriver batch = make_fleet(make_options(24, FleetMode::Batch));
  FleetDriver loop = make_fleet(make_options(24, FleetMode::Loop));
  expect_fleets_bitwise_equal(batch, loop, 0);  // spawn + initial conditioning
  for (std::size_t tick = 1; tick <= 6; ++tick) {
    batch.tick();
    loop.tick();
    expect_fleets_bitwise_equal(batch, loop, tick);
  }
  // Every decided lane is either a canonical class solve or a shared hit.
  EXPECT_EQ(batch.stats().classes + batch.stats().shared_hits,
            batch.stats().decisions);
  // Loop mode never canonicalizes: one class per decision, no sharing.
  EXPECT_EQ(loop.stats().classes, loop.stats().decisions);
  EXPECT_EQ(loop.stats().shared_hits, 0u);
}

TEST(FleetParityTest, CrossTickDecisionCacheIsExact) {
  FleetOptions cached = make_options(24, FleetMode::Batch);
  FleetOptions uncached = cached;
  uncached.decision_cache = false;
  FleetDriver with_cache = make_fleet(cached);
  FleetDriver without_cache = make_fleet(uncached);
  for (std::size_t tick = 1; tick <= 6; ++tick) {
    with_cache.tick();
    without_cache.tick();
    expect_fleets_bitwise_equal(with_cache, without_cache, tick);
  }
  // The cache only ever *adds* reuse on top of the per-tick
  // canonicalization — and after a few ticks of recurring beliefs it must
  // actually fire.
  EXPECT_GT(with_cache.stats().shared_hits, without_cache.stats().shared_hits);
  EXPECT_LT(with_cache.stats().classes, without_cache.stats().classes);
}

TEST(FleetParityTest, MemoCarryOverIsExact) {
  // --memo-carry keeps each decide's transposition cache alive across
  // decides and episodes (the bound set is frozen during ticks, so carried
  // entries stay valid). Hits are bitwise-exact, so the whole fleet must
  // stay bit-identical to a carry-off twin, tick by tick.
  FleetOptions plain = make_options(24, FleetMode::Batch);
  FleetOptions carrying = plain;
  carrying.memo_carry = true;
  FleetDriver without = make_fleet(plain);
  FleetDriver with = make_fleet(carrying);
  for (std::size_t tick = 1; tick <= 6; ++tick) {
    without.tick();
    with.tick();
    expect_fleets_bitwise_equal(without, with, tick);
  }
}

TEST(FleetParityTest, ScalarMatchesAutoKernelsBitwise) {
  SimdModeGuard guard;
  simd::configure("scalar");
  FleetDriver scalar = make_fleet(make_options(16, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 4; ++tick) scalar.tick();

  simd::configure("auto");
  FleetDriver vectorized = make_fleet(make_options(16, FleetMode::Batch));
  for (std::size_t tick = 0; tick < 4; ++tick) vectorized.tick();

  expect_fleets_bitwise_equal(scalar, vectorized, 4);
}

TEST(FleetDriverTest, RespawnKeepsFleetWidthSteady) {
  FleetOptions options = make_options(16, FleetMode::Batch);
  options.max_steps = 3;  // force truncation respawns quickly
  FleetDriver fleet = make_fleet(options);
  for (std::size_t tick = 0; tick < 9; ++tick) {
    fleet.tick();
    EXPECT_EQ(fleet.sessions(), 16u);
    EXPECT_EQ(fleet.beliefs().size(), 16u);
  }
  const FleetStats& stats = fleet.stats();
  EXPECT_EQ(stats.ticks, 9u);
  // Terminate-transformed model: every slot decides every tick.
  EXPECT_EQ(stats.decisions, 9u * 16u);
  EXPECT_GT(stats.episodes_completed, 0u);
  EXPECT_GT(stats.episodes_truncated, 0u);
  EXPECT_LE(stats.episodes_truncated, stats.episodes_completed);
  EXPECT_GE(fleet.healthy_fraction(), 0.0);
  EXPECT_LE(fleet.healthy_fraction(), 1.0);
}

TEST(FleetDriverTest, SameSeedSameModeIsReproducible) {
  FleetDriver first = make_fleet(make_options(12, FleetMode::Batch), 99);
  FleetDriver second = make_fleet(make_options(12, FleetMode::Batch), 99);
  for (std::size_t tick = 1; tick <= 3; ++tick) {
    first.tick();
    second.tick();
    expect_fleets_bitwise_equal(first, second, tick);
  }
  // A different seed must not replay the same fleet (faults, readings, and
  // decisions all flow from the per-slot streams).
  FleetDriver other = make_fleet(make_options(12, FleetMode::Batch), 100);
  for (std::size_t tick = 0; tick < 3; ++tick) other.tick();
  bool any_difference = false;
  const std::size_t num_states = first.beliefs().num_states();
  for (StateId s = 0; s < num_states && !any_difference; ++s) {
    const auto a = first.beliefs().state_lanes(s);
    const auto b = other.beliefs().state_lanes(s);
    any_difference = std::memcmp(a.data(), b.data(), 12 * sizeof(double)) != 0;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FleetDriverTest, ConstructorValidatesOptions) {
  EmnFleet& f = emn();
  FleetOptions no_observe = make_options(4, FleetMode::Batch);
  no_observe.observe_action = kInvalidId;
  EXPECT_THROW(FleetDriver(f.recovery, f.base, f.set, f.injector, 1, no_observe),
               PreconditionError);

  FleetOptions no_sessions = make_options(4, FleetMode::Batch);
  no_sessions.sessions = 0;
  EXPECT_THROW(FleetDriver(f.recovery, f.base, f.set, f.injector, 1, no_sessions),
               PreconditionError);

  FleetOptions bad_depth = make_options(4, FleetMode::Batch);
  bad_depth.tree_depth = 0;
  EXPECT_THROW(FleetDriver(f.recovery, f.base, f.set, f.injector, 1, bad_depth),
               PreconditionError);
}

}  // namespace
}  // namespace recoverd::sim
