// The recoverd::guard runtime: mismatch policies on the Bayes γ ≤ 0 path,
// the decide() deadline ladder, livelock detection, bound-consistency
// repair, and the max_steps truncation accounting.
#include "controller/guard.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "controller/bounded_controller.hpp"
#include "controller/heuristic_controller.hpp"
#include "controller/interval_controller.hpp"
#include "controller/most_likely_controller.hpp"
#include "controller/policy_controller.hpp"
#include "controller/random_controller.hpp"
#include "models/two_server.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "util/check.hpp"

namespace recoverd::controller {
namespace {

CliArgs make_args(const std::vector<std::string>& flags) {
  std::vector<const char*> argv = {"test"};
  for (const auto& flag : flags) argv.push_back(flag.c_str());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(GuardPolicyTest, ParsesEveryPolicyRoundTrip) {
  for (GuardPolicy policy : {GuardPolicy::Ignore, GuardPolicy::Renormalize,
                             GuardPolicy::ResetPrior, GuardPolicy::Escalate}) {
    EXPECT_EQ(parse_guard_policy(guard_policy_name(policy)), policy);
  }
  EXPECT_THROW(parse_guard_policy("panic"), PreconditionError);
  EXPECT_THROW(parse_guard_policy(""), PreconditionError);
}

TEST(GuardOptionsTest, DefaultsPreserveLegacyBehaviour) {
  const GuardOptions options = parse_guard_options(make_args({}));
  EXPECT_EQ(options.mismatch_policy, GuardPolicy::Ignore);
  EXPECT_DOUBLE_EQ(options.decide_deadline_ms, 0.0);
  EXPECT_EQ(options.deadline_max_overruns, 8);
  EXPECT_EQ(options.livelock_window, 0u);
  EXPECT_EQ(guard_flag_names().size(), 4u);
}

TEST(GuardOptionsTest, ParsesEveryFlag) {
  const GuardOptions options = parse_guard_options(
      make_args({"--guard-policy=reset-prior", "--decide-deadline-ms=2.5",
                 "--guard-deadline-overruns=3", "--guard-livelock-window=32"}));
  EXPECT_EQ(options.mismatch_policy, GuardPolicy::ResetPrior);
  EXPECT_DOUBLE_EQ(options.decide_deadline_ms, 2.5);
  EXPECT_EQ(options.deadline_max_overruns, 3);
  EXPECT_EQ(options.livelock_window, 32u);
}

TEST(GuardOptionsTest, RejectsInvalidValues) {
  EXPECT_THROW(parse_guard_options(make_args({"--guard-policy=bogus"})),
               PreconditionError);
  EXPECT_THROW(parse_guard_options(make_args({"--decide-deadline-ms=-1"})),
               PreconditionError);
  EXPECT_THROW(parse_guard_options(make_args({"--guard-deadline-overruns=0"})),
               PreconditionError);
}

TEST(CliArgsChoiceTest, ValidatesAgainstAllowedSet) {
  const CliArgs args = make_args({"--mode=fast"});
  EXPECT_EQ(args.get_choice("mode", "slow", {"fast", "slow"}), "fast");
  EXPECT_EQ(args.get_choice("missing", "slow", {"fast", "slow"}), "slow");
  EXPECT_THROW(args.get_choice("mode", "slow", {"slow", "medium"}),
               PreconditionError);
}

// --- GuardRuntime state machine -------------------------------------------

TEST(GuardRuntimeTest, EscalationLatchesUntilNextEpisode) {
  GuardRuntime runtime{GuardOptions{}};
  EXPECT_FALSE(runtime.escalation_requested());
  runtime.request_escalation("mismatch");
  EXPECT_TRUE(runtime.escalation_requested());
  runtime.request_escalation("mismatch");  // idempotent
  EXPECT_TRUE(runtime.escalation_requested());
  runtime.begin_episode();
  EXPECT_FALSE(runtime.escalation_requested());
}

TEST(GuardRuntimeTest, LivelockWindowEscalatesOnStalledBound) {
  GuardOptions options;
  options.livelock_window = 3;
  GuardRuntime runtime(options);
  runtime.begin_episode();
  runtime.note_expected_bound(-5.0);  // establishes the best bound
  runtime.note_expected_bound(-5.0);
  runtime.note_expected_bound(-5.0);
  EXPECT_FALSE(runtime.escalation_requested());
  runtime.note_expected_bound(-5.0);  // third consecutive stall
  EXPECT_TRUE(runtime.escalation_requested());
}

TEST(GuardRuntimeTest, ImprovingBoundResetsTheLivelockWindow) {
  GuardOptions options;
  options.livelock_window = 2;
  GuardRuntime runtime(options);
  runtime.begin_episode();
  // Property 1's regime: the bound strictly improves every decide. The
  // stall counter must never accumulate across improvements.
  for (double v = -10.0; v < -1.0; v += 1.0) {
    runtime.note_expected_bound(v);
    EXPECT_FALSE(runtime.escalation_requested());
  }
  runtime.note_expected_bound(-2.5);  // below the best bound: stall 1
  runtime.note_expected_bound(-2.0);  // still not above the best: stall 2 → escalate
  EXPECT_TRUE(runtime.escalation_requested());
}

TEST(GuardRuntimeTest, LivelockDisabledByDefault) {
  GuardRuntime runtime{GuardOptions{}};
  runtime.begin_episode();
  for (int i = 0; i < 100; ++i) runtime.note_expected_bound(-1.0);
  EXPECT_FALSE(runtime.escalation_requested());
}

TEST(GuardRuntimeTest, OverrunsOnlyCountAtTheGreedyFloor) {
  GuardOptions options;
  options.decide_deadline_ms = 10.0;
  options.deadline_max_overruns = 2;
  GuardRuntime runtime(options);
  runtime.begin_episode();
  ASSERT_TRUE(runtime.deadline_enabled());
  // A deep tree blowing the deadline degrades but does not burn the budget.
  for (int i = 0; i < 10; ++i) runtime.note_decide(50.0, 3, 4);
  EXPECT_FALSE(runtime.escalation_requested());
  // At the greedy floor the budget applies; an in-budget decide resets it.
  runtime.note_decide(50.0, 1, 4);
  runtime.note_decide(1.0, 1, 4);
  runtime.note_decide(50.0, 1, 4);
  EXPECT_FALSE(runtime.escalation_requested());
  runtime.note_decide(50.0, 1, 4);  // second consecutive floor overrun
  EXPECT_TRUE(runtime.escalation_requested());
}

// --- BoundSet surgery ------------------------------------------------------

TEST(BoundSetRepairTest, RemoveRespectsProtection) {
  bounds::BoundSet set(2);
  set.add({-10.0, -10.0});  // first added → protected RA-Bound base plane
  set.add({-5.0, -20.0});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.is_protected(0));
  EXPECT_FALSE(set.is_protected(1));
  EXPECT_THROW(set.remove(0), PreconditionError);
  set.remove(1);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_THROW(set.remove(5), PreconditionError);
  EXPECT_THROW(set.is_protected(5), PreconditionError);
}

class BoundCrossingFixture : public ::testing::Test {
 protected:
  BoundCrossingFixture()
      : model_(models::make_two_server_without_notification(40.0)),
        ids_(models::two_server_ids(model_)),
        upper_(model_),
        belief_(Belief::uniform_over(
            model_.num_states(), std::vector<StateId>{ids_.fault_a, ids_.fault_b})) {}

  bounds::BoundVector flat(double value) const {
    return bounds::BoundVector(model_.num_states(), value);
  }

  Pomdp model_;
  models::TwoServerIds ids_;
  bounds::SawtoothUpperBound upper_;
  Belief belief_;
};

TEST_F(BoundCrossingFixture, EvictsHyperplanesCrossingTheUpperBound) {
  const double ub = upper_.evaluate(belief_);
  bounds::BoundSet lower(model_.num_states());
  lower.add(flat(ub - 100.0));  // sound, protected base plane
  // Two unsound planes crossing the upper bound at the fault belief,
  // dipping at different coordinates so neither pointwise-dominates the
  // other (add() would prune a dominated one before the repair could).
  bounds::BoundVector unsound_a = flat(ub + 10.0);
  unsound_a[ids_.null_state] = ub - 50.0;
  lower.add(std::move(unsound_a));
  lower.add(flat(ub + 5.0));
  ASSERT_EQ(lower.size(), 3u);

  const std::size_t evicted = repair_bound_crossing(lower, upper_, belief_);
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(lower.size(), 1u);
  EXPECT_TRUE(lower.is_protected(0));
  EXPECT_LE(lower.evaluate(belief_.probabilities()), ub + 1e-6);
  // Idempotent once consistent.
  EXPECT_EQ(repair_bound_crossing(lower, upper_, belief_), 0u);
}

TEST_F(BoundCrossingFixture, NeverEvictsTheProtectedBasePlane) {
  const double ub = upper_.evaluate(belief_);
  bounds::BoundSet lower(model_.num_states());
  lower.add(flat(ub + 5.0));  // the base plane itself is the offender
  const auto& unrepairable =
      obs::metrics().counter("controller.guard.bound_unrepairable");
  const std::uint64_t before = unrepairable.value();
  EXPECT_EQ(repair_bound_crossing(lower, upper_, belief_), 0u);
  EXPECT_EQ(lower.size(), 1u);  // counted, kept, recovery continues
  EXPECT_EQ(unrepairable.value(), before + 1);
}

// --- mismatch policies on the Bayes γ ≤ 0 path ----------------------------

// A three-state chain where `fix` marches s0 → s1 → goal and the
// observation "never" has zero likelihood everywhere, so feeding it to a
// belief tracker is a guaranteed off-model event whose action prediction
// (point mass one step down the chain) differs from the prior.
struct ChainModel {
  ChainModel()
      : pomdp(build()),
        s0(pomdp.mdp().find_state("s0")),
        s1(pomdp.mdp().find_state("s1")),
        goal(pomdp.mdp().find_state("goal")),
        fix(pomdp.mdp().find_action("fix")),
        ok(pomdp.find_observation("ok")),
        never(pomdp.find_observation("never")) {}

  static Pomdp build() {
    PomdpBuilder b;
    const StateId s0 = b.add_state("s0", -1.0);
    const StateId s1 = b.add_state("s1", -1.0);
    const StateId goal = b.add_state("goal", 0.0);
    b.mark_goal(goal);
    const ActionId fix = b.add_action("fix", 1.0);
    b.set_transition(s0, fix, s1, 1.0);
    b.set_transition(s1, fix, goal, 1.0);
    b.set_transition(goal, fix, goal, 1.0);
    const ObsId ok = b.add_observation("ok");
    b.add_observation("never");
    for (StateId s : {s0, s1, goal}) b.set_observation_all_actions(s, ok, 1.0);
    return b.build();
  }

  Pomdp pomdp;
  StateId s0, s1, goal;
  ActionId fix;
  ObsId ok, never;
};

GuardOptions policy_options(GuardPolicy policy) {
  GuardOptions options;
  options.mismatch_policy = policy;
  return options;
}

TEST(GuardMismatchPolicyTest, IgnoreKeepsTheBeliefUnchanged) {
  ChainModel m;
  RandomController c(m.pomdp, Rng(1));
  c.set_guard_options(policy_options(GuardPolicy::Ignore));
  c.begin_episode(Belief::point(m.pomdp.num_states(), m.s0));
  c.record(m.fix, m.never);
  EXPECT_EQ(c.mismatch_count(), 1u);
  EXPECT_DOUBLE_EQ(c.belief()[m.s0], 1.0);
}

TEST(GuardMismatchPolicyTest, RenormalizeConditionsOnTheActionAlone) {
  ChainModel m;
  RandomController c(m.pomdp, Rng(1));
  c.set_guard_options(policy_options(GuardPolicy::Renormalize));
  c.begin_episode(Belief::point(m.pomdp.num_states(), m.s0));
  c.record(m.fix, m.never);
  EXPECT_EQ(c.mismatch_count(), 1u);
  // belief ← πᵀP(fix): the point mass moved one step down the chain even
  // though the observation carried no usable information.
  EXPECT_DOUBLE_EQ(c.belief()[m.s1], 1.0);
  EXPECT_DOUBLE_EQ(c.belief()[m.s0], 0.0);
}

TEST(GuardMismatchPolicyTest, ResetPriorRestoresTheEpisodeBelief) {
  ChainModel m;
  RandomController c(m.pomdp, Rng(1));
  c.set_guard_options(policy_options(GuardPolicy::ResetPrior));
  c.begin_episode(Belief::point(m.pomdp.num_states(), m.s0));
  c.record(m.fix, m.ok);  // legitimate update: belief is now at s1
  ASSERT_DOUBLE_EQ(c.belief()[m.s1], 1.0);
  c.record(m.fix, m.never);
  EXPECT_EQ(c.mismatch_count(), 1u);
  EXPECT_DOUBLE_EQ(c.belief()[m.s0], 1.0);  // back to the episode prior
}

TEST(GuardMismatchPolicyTest, EscalateTerminatesOnNextDecide) {
  const Pomdp model = models::make_two_server();
  const auto ids = models::two_server_ids(model);
  MostLikelyControllerOptions opts;
  opts.observe_action = ids.observe;
  MostLikelyController c(model, opts);
  c.set_guard_options(policy_options(GuardPolicy::Escalate));
  c.begin_episode(Belief::point(model.num_states(), ids.fault_a));
  // alarm(b) is impossible from a point belief on Fault(a).
  const auto& escalations = obs::metrics().counter("controller.guard.escalations");
  const std::uint64_t before = escalations.value();
  c.record(ids.observe, ids.alarm_b);
  EXPECT_TRUE(c.guard().escalation_requested());
  EXPECT_EQ(escalations.value(), before + 1);
  const Decision d = c.decide();
  EXPECT_TRUE(d.terminate);
  // A fresh episode clears the latch.
  c.begin_episode(Belief::point(model.num_states(), ids.fault_a));
  EXPECT_FALSE(c.guard().escalation_requested());
  EXPECT_FALSE(c.decide().terminate);
}

TEST(GuardMismatchPolicyTest, EscalateUsesTerminateActionWhenModelHasOne) {
  const Pomdp model = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(model);
  bounds::BoundSet set = bounds::make_ra_bound_set(model.mdp());
  BoundedController c(model, set);
  c.set_guard_options(policy_options(GuardPolicy::Escalate));
  c.begin_episode(Belief::point(model.num_states(), ids.fault_a));
  c.record(ids.observe, ids.alarm_b);
  const Decision d = c.decide();
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.action, model.terminate_action());
}

TEST(GuardMismatchPolicyTest, EveryBeliefTrackerSurvivesOffModelObservations) {
  // The satellite audit: every belief-tracking controller must absorb a
  // zero-likelihood observation (no throw, mismatch counted) and, under
  // the escalate policy, hand the episode off on its next decide().
  const Pomdp base = models::make_two_server();
  const Pomdp recovery = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(base);
  bounds::BoundSet lower = bounds::make_ra_bound_set(recovery.mdp());
  bounds::SawtoothUpperBound upper(recovery);

  MostLikelyControllerOptions ml_opts;
  ml_opts.observe_action = ids.observe;
  MostLikelyController most_likely(base, ml_opts);
  HeuristicController heuristic(base, {});
  BoundedController bounded(recovery, lower);
  IntervalController interval(recovery, lower, upper);
  PolicyController policy(recovery, Policy(recovery.num_states(), ids.observe));
  RandomController random(base, Rng(1));

  std::vector<BeliefTrackingController*> trackers = {
      &most_likely, &heuristic, &bounded, &interval, &policy, &random};
  for (BeliefTrackingController* c : trackers) {
    SCOPED_TRACE(c->name());
    c->set_guard_options(policy_options(GuardPolicy::Escalate));
    c->begin_episode(Belief::point(c->model().num_states(), ids.fault_a));
    // alarm(b) has zero likelihood from a point belief on Fault(a).
    EXPECT_NO_THROW(c->record(ids.observe, ids.alarm_b));
    EXPECT_EQ(c->mismatch_count(), 1u);
    EXPECT_TRUE(c->decide().terminate);
  }
}

// --- the deadline ladder on the bounded controller ------------------------

TEST(GuardDeadlineTest, GenerousDeadlineKeepsTheFullDepthDecision) {
  const Pomdp model = models::make_two_server_without_notification(40.0);
  const auto ids = models::two_server_ids(model);
  bounds::BoundSet set = bounds::make_ra_bound_set(model.mdp());
  BoundedControllerOptions opts;
  opts.tree_depth = 2;
  BoundedController c(model, set, opts);
  GuardOptions guard;
  guard.decide_deadline_ms = 1e9;  // never binds
  c.set_guard_options(guard);
  c.begin_episode(Belief::point(model.num_states(), ids.fault_a));
  const Decision d = c.decide();
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.action, ids.restart_a);
  EXPECT_FALSE(c.guard().escalation_requested());
}

TEST(GuardDeadlineTest, RepeatedOverrunsAtTheFloorEscalate) {
  const Pomdp model = models::make_two_server_without_notification(21600.0);
  const auto ids = models::two_server_ids(model);
  bounds::BoundSet set = bounds::make_ra_bound_set(model.mdp());
  BoundedControllerOptions opts;
  opts.tree_depth = 2;
  BoundedController c(model, set, opts);
  GuardOptions guard;
  guard.decide_deadline_ms = 1e-9;  // every decide overruns at depth 1
  guard.deadline_max_overruns = 2;
  c.set_guard_options(guard);
  c.begin_episode(Belief::uniform_over(
      model.num_states(), std::vector<StateId>{ids.fault_a, ids.fault_b}));
  bool terminated = false;
  for (int i = 0; i < 4 && !terminated; ++i) {
    terminated = c.decide().terminate;
  }
  EXPECT_TRUE(terminated);
  EXPECT_TRUE(c.guard().escalation_requested());
}

// --- truncation accounting -------------------------------------------------

TEST(GuardTruncationTest, CappedEpisodesAreCountedAndSurfaced) {
  const Pomdp model = models::make_two_server();
  const auto ids = models::two_server_ids(model);
  MostLikelyControllerOptions opts;
  opts.observe_action = ids.observe;
  MostLikelyController c(model, opts);
  const sim::FaultInjector injector({ids.fault_a, ids.fault_b});
  sim::EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};
  config.max_steps = 1;  // a one-step budget cannot finish a recovery
  const auto& truncated_counter = obs::metrics().counter("sim.episodes.truncated");
  const std::uint64_t before = truncated_counter.value();
  const auto result = sim::run_experiment(model, c, injector, 5, 17, config);
  EXPECT_EQ(result.not_terminated, 5u);
  EXPECT_EQ(result.truncated(), 5u);
  EXPECT_EQ(truncated_counter.value(), before + 5);

  config.max_steps = 500;
  const auto healthy = sim::run_experiment(model, c, injector, 5, 17, config);
  EXPECT_EQ(healthy.truncated(), 0u);
}

}  // namespace
}  // namespace recoverd::controller
