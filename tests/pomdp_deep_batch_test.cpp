// Exactness suite for the deep-batched decide() pipeline (DESIGN.md §16):
// on 120 randomized recovery POMDPs, action_values_batch_deep() /
// decide_batch_deep() must reproduce the classic per-class walks — and the
// sequential single-belief reference — BIT FOR BIT, for every batch
// composition, depth 1..3, branch floor, work-pool thread cap, root_jobs
// fan-out, and SIMD kernel tier the host supports. The suite also pins the
// frontier-canonicalization accounting: duplicated lanes and overlapping
// subtrees must collapse into the same canonical node tables, and the
// deep_node_budget fallback must return the identical bits through the
// classic path.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/belief_batch.hpp"
#include "pomdp/expansion.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/work_pool.hpp"

namespace recoverd {
namespace {

// Random but valid recovery POMDP (same generator as the batch-parity and
// memo suites): state 0 is the goal, action 0 always repairs downward, and
// the observation rows mix large and tiny entries so branch floors prune
// some branches but not all.
Pomdp make_random_pomdp(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_states = 3 + rng.uniform_index(5);   // 3..7
  const std::size_t num_actions = 2 + rng.uniform_index(3);  // 2..4
  const std::size_t num_obs = 2 + rng.uniform_index(4);      // 2..5

  PomdpBuilder b;
  for (StateId s = 0; s < num_states; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -rng.uniform(0.05, 1.0));
  }
  b.mark_goal(0);
  for (ActionId a = 0; a < num_actions; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    b.add_action(name, rng.uniform(0.5, 10.0));
  }
  for (ObsId o = 0; o < num_obs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<StateId> targets;
      if (s > 0 && a == 0) targets.push_back(rng.uniform_index(s));
      targets.push_back(rng.uniform_index(num_states));
      if (rng.bernoulli(0.5)) targets.push_back(rng.uniform_index(num_states));
      std::vector<double> row(num_states, 0.0);
      double total = 0.0;
      std::vector<double> weights(targets.size());
      for (auto& w : weights) {
        w = rng.uniform(0.1, 1.0);
        total += w;
      }
      for (std::size_t i = 0; i < targets.size(); ++i) row[targets[i]] += weights[i] / total;
      for (StateId t = 0; t < num_states; ++t) {
        if (row[t] > 0.0) b.set_transition(s, a, t, row[t]);
      }
      if (rng.bernoulli(0.3)) b.set_impulse_reward(s, a, -rng.uniform(0.0, 2.0));
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<double> row(num_obs);
      double total = 0.0;
      for (auto& v : row) {
        v = rng.bernoulli(0.4) ? rng.uniform(0.5, 1.0) : rng.uniform(0.001, 0.05);
        total += v;
      }
      for (ObsId o = 0; o < num_obs; ++o) b.set_observation(s, a, o, row[o] / total);
    }
  }
  return b.build();
}

// Piecewise-linear leaf (max over random hyperplanes), shaped like the
// BoundSet evaluations the controllers use.
struct SawLeaf {
  std::vector<std::vector<double>> planes;

  static SawLeaf random(std::size_t num_states, Rng& rng) {
    SawLeaf leaf;
    const std::size_t n = 1 + rng.uniform_index(3);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> w(num_states);
      for (auto& v : w) v = -rng.uniform(0.0, 50.0);
      leaf.planes.push_back(std::move(w));
    }
    return leaf;
  }

  double operator()(std::span<const double> pi) const {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& w : planes) best = std::max(best, linalg::dot(w, pi));
    return best;
  }
};

struct DeepCase {
  Pomdp pomdp;
  std::vector<Belief> pool;  // distinct beliefs lanes draw from (with repeats)
  SawLeaf leaf;
  int depth;
  double floor;
};

constexpr std::size_t kPoolSize = 5;

DeepCase make_case(std::uint64_t seed) {
  DeepCase c{make_random_pomdp(seed), {}, {}, 1, 0.0};
  Rng rng(seed ^ 0xdeeb5eed);
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    std::vector<double> pi(c.pomdp.num_states());
    for (auto& v : pi) v = rng.uniform(0.01, 1.0);
    c.pool.emplace_back(std::move(pi));  // Belief normalises
  }
  c.leaf = SawLeaf::random(c.pomdp.num_states(), rng);
  // Depth 1..3: the deep pipeline's dedup-across-levels only shows its
  // teeth at depth >= 2, so the draw is biased upward.
  c.depth = 1 + static_cast<int>(rng.uniform_index(3));
  const double floors[] = {0.0, 1e-3, 5e-2};
  c.floor = floors[rng.uniform_index(3)];
  return c;
}

BeliefBatch make_batch(const DeepCase& c, std::size_t lanes, std::uint64_t salt) {
  Rng rng(salt);
  BeliefBatch batch(c.pomdp.num_states());
  batch.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    batch.push_back(c.pool[rng.uniform_index(c.pool.size())], lane);
  }
  return batch;
}

ExpansionOptions base_options(const DeepCase& c, bool memo = true, int root_jobs = 1) {
  ExpansionOptions opts;
  opts.branch_floor = c.floor;
  opts.memo = memo;
  opts.root_jobs = root_jobs;
  return opts;
}

// Restore defaults no matter how a test exits: the SIMD mode and the pool
// thread cap are process-wide.
struct EnvGuard {
  ~EnvGuard() {
    simd::configure("auto");
    util::WorkPool::instance().configure_threads(static_cast<std::size_t>(-1));
  }
};

void expect_rows_equal(const std::vector<ActionValue>& got,
                       const std::vector<ActionValue>& want, const char* label,
                       std::uint64_t seed) {
  ASSERT_EQ(got.size(), want.size()) << label << " seed=" << seed;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].action, want[i].action) << label << " seed=" << seed << " i=" << i;
    EXPECT_EQ(got[i].value, want[i].value) << label << " seed=" << seed << " i=" << i;
  }
}

class DeepBatchParityTest : public ::testing::TestWithParam<std::uint64_t> {};

// The core contract: deep == classic == sequential reference, bitwise.
TEST_P(DeepBatchParityTest, DeepMatchesClassicAndSequentialBitwise) {
  const DeepCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const ExpansionOptions opts = base_options(c);
  const std::size_t num_actions = c.pomdp.num_actions();

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    const BeliefBatch batch = make_batch(c, lanes, GetParam() ^ lanes);

    std::vector<ActionValue> deep;
    BatchExpansionStats deep_stats;
    engine.action_values_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf), opts, deep,
                                    &deep_stats);
    ASSERT_EQ(deep.size(), lanes * num_actions);
    EXPECT_TRUE(deep_stats.deep);
    EXPECT_EQ(deep_stats.sessions, lanes);
    EXPECT_EQ(deep_stats.classes + deep_stats.shared_hits, lanes);
    // Level 0 alone contributes `classes` Max nodes; at least one branch
    // always survives the floors this suite draws, so the leaf frontier is
    // never empty.
    EXPECT_GE(deep_stats.frontier_nodes, deep_stats.classes);
    EXPECT_GE(deep_stats.frontier_leaves, 1u);

    std::vector<ActionValue> classic;
    engine.action_values_batch(batch, c.depth, SpanLeaf::of(c.leaf), opts, classic);
    expect_rows_equal(deep, classic, "deep vs classic", GetParam());

    std::vector<double> pi(c.pomdp.num_states());
    std::vector<ActionValue> looped;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      batch.copy_lane(lane, pi);
      engine.action_values(pi, c.depth, SpanLeaf::of(c.leaf), opts, looped);
      for (std::size_t a = 0; a < num_actions; ++a) {
        EXPECT_EQ(deep[lane * num_actions + a].action, looped[a].action);
        EXPECT_EQ(deep[lane * num_actions + a].value, looped[a].value)
            << "seed=" << GetParam() << " lanes=" << lanes << " lane=" << lane
            << " action=" << a;
      }
    }
  }
}

TEST_P(DeepBatchParityTest, DecideDeepMatchesBestActionBitwise) {
  const DeepCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const ExpansionOptions opts = base_options(c);
  const BeliefBatch batch = make_batch(c, 9, GetParam() ^ 0x99);

  std::vector<ActionValue> best;
  BatchExpansionStats stats;
  engine.decide_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf), opts, best, &stats);
  ASSERT_EQ(best.size(), batch.size());
  EXPECT_TRUE(stats.deep);

  std::vector<double> pi(c.pomdp.num_states());
  for (std::size_t lane = 0; lane < batch.size(); ++lane) {
    batch.copy_lane(lane, pi);
    const ActionValue reference =
        engine.best_action(pi, c.depth, SpanLeaf::of(c.leaf), opts);
    EXPECT_EQ(best[lane].action, reference.action) << "lane " << lane;
    EXPECT_EQ(best[lane].value, reference.value) << "lane " << lane;
  }
}

// The deep pipeline never touches the memo or the root fan-out, but the
// classic fallback does — and callers flip these knobs freely. All
// combinations, including every work-pool thread cap, must agree bitwise.
TEST_P(DeepBatchParityTest, DeepInvariantAcrossPoolCapsMemoAndRootJobs) {
  const DeepCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const BeliefBatch batch = make_batch(c, 7, GetParam() ^ 0x4242);
  EnvGuard guard;

  std::vector<ActionValue> reference;
  engine.action_values_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf), base_options(c),
                                  reference);

  for (const std::size_t cap : {std::size_t{1}, std::size_t{3}}) {
    util::WorkPool::instance().configure_threads(cap);
    for (const bool memo : {true, false}) {
      for (const int root_jobs : {1, 3}) {
        std::vector<ActionValue> got;
        engine.action_values_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf),
                                        base_options(c, memo, root_jobs), got);
        expect_rows_equal(got, reference, "pool/memo/jobs variant", GetParam());
      }
    }
  }
}

// Forcing every SIMD tier the host supports must leave the bits unchanged
// (the scalar kernels are the reference; AVX2/AVX-512 vectorize only
// across independent accumulators, never inside one FP reduction).
TEST_P(DeepBatchParityTest, DeepInvariantAcrossSimdTiers) {
  const DeepCase c = make_case(GetParam());
  EnvGuard guard;

  const auto run = [&](std::vector<ActionValue>& values) {
    ExpansionEngine engine(c.pomdp);
    const BeliefBatch batch = make_batch(c, 7, GetParam() ^ 0x51);
    engine.action_values_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf),
                                    base_options(c), values);
  };

  simd::configure("scalar");
  std::vector<ActionValue> scalar_values;
  run(scalar_values);

  if (simd::cpu_supports_avx2()) {
    simd::configure("avx2");
    std::vector<ActionValue> avx2_values;
    run(avx2_values);
    expect_rows_equal(avx2_values, scalar_values, "avx2 vs scalar", GetParam());
  }
  if (simd::cpu_supports_avx512()) {
    simd::configure("avx512");
    std::vector<ActionValue> avx512_values;
    run(avx512_values);
    expect_rows_equal(avx512_values, scalar_values, "avx512 vs scalar", GetParam());
  }
  simd::configure("auto");
  std::vector<ActionValue> auto_values;
  run(auto_values);
  expect_rows_equal(auto_values, scalar_values, "auto vs scalar", GetParam());
}

// An absurdly small node budget must route through the classic walks and
// still return the identical bits (stats report which path ran).
TEST_P(DeepBatchParityTest, NodeBudgetFallbackIsBitwiseIdentical) {
  const DeepCase c = make_case(GetParam());
  ExpansionEngine engine(c.pomdp);
  const BeliefBatch batch = make_batch(c, 7, GetParam() ^ 0xfa11);

  std::vector<ActionValue> reference;
  engine.action_values_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf), base_options(c),
                                  reference);

  ExpansionOptions tiny = base_options(c);
  tiny.deep_node_budget = 1;
  std::vector<ActionValue> fallback;
  BatchExpansionStats stats;
  engine.action_values_batch_deep(batch, c.depth, SpanLeaf::of(c.leaf), tiny, fallback,
                                  &stats);
  expect_rows_equal(fallback, reference, "budget fallback", GetParam());
  // Every case in this suite has >= 2 reachable beliefs somewhere in the
  // tree, so a budget of one node cannot hold a level.
  EXPECT_FALSE(stats.deep);
  EXPECT_EQ(stats.frontier_nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepBatchParityTest,
                         ::testing::Range<std::uint64_t>(1, 121));

// ---- frontier canonicalization accounting --------------------------------

TEST(DeepBatchFrontierTest, DuplicateLanesCollapseToOneClassAndOneTree) {
  const DeepCase c = make_case(7);
  ExpansionEngine engine(c.pomdp);
  const ExpansionOptions opts = base_options(c);

  BeliefBatch single(c.pomdp.num_states());
  single.push_back(c.pool[0], 0);
  std::vector<ActionValue> single_values;
  BatchExpansionStats single_stats;
  engine.action_values_batch_deep(single, c.depth, SpanLeaf::of(c.leaf), opts,
                                  single_values, &single_stats);

  BeliefBatch dup(c.pomdp.num_states());
  for (std::size_t lane = 0; lane < 6; ++lane) dup.push_back(c.pool[0], lane);
  std::vector<ActionValue> dup_values;
  BatchExpansionStats dup_stats;
  engine.action_values_batch_deep(dup, c.depth, SpanLeaf::of(c.leaf), opts, dup_values,
                                  &dup_stats);

  // Six bitwise-identical lanes are one canonical root: the deep tree —
  // node tables and the leaf frontier — is exactly the single-lane tree.
  EXPECT_EQ(dup_stats.classes, 1u);
  EXPECT_EQ(dup_stats.shared_hits, 5u);
  EXPECT_EQ(dup_stats.frontier_nodes, single_stats.frontier_nodes);
  EXPECT_EQ(dup_stats.frontier_leaves, single_stats.frontier_leaves);
  const std::size_t num_actions = c.pomdp.num_actions();
  for (std::size_t lane = 0; lane < 6; ++lane) {
    for (std::size_t a = 0; a < num_actions; ++a) {
      EXPECT_EQ(dup_values[lane * num_actions + a].value, single_values[a].value);
    }
  }
}

TEST(DeepBatchFrontierTest, GlobalCanonicalizationNeverGrowsTheFrontier) {
  const DeepCase c = make_case(11);
  ExpansionEngine engine(c.pomdp);
  const ExpansionOptions opts = base_options(c);

  // Solve the two roots separately, then together: cross-root dedup can
  // only shrink the combined node tables, never grow them.
  std::size_t separate_nodes = 0;
  std::size_t separate_leaves = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    BeliefBatch one(c.pomdp.num_states());
    one.push_back(c.pool[i], 0);
    std::vector<ActionValue> values;
    BatchExpansionStats stats;
    engine.action_values_batch_deep(one, c.depth, SpanLeaf::of(c.leaf), opts, values,
                                    &stats);
    separate_nodes += stats.frontier_nodes;
    separate_leaves += stats.frontier_leaves;
  }

  BeliefBatch both(c.pomdp.num_states());
  both.push_back(c.pool[0], 0);
  both.push_back(c.pool[1], 1);
  std::vector<ActionValue> values;
  BatchExpansionStats stats;
  engine.action_values_batch_deep(both, c.depth, SpanLeaf::of(c.leaf), opts, values,
                                  &stats);
  EXPECT_EQ(stats.classes, 2u);
  EXPECT_LE(stats.frontier_nodes, separate_nodes);
  EXPECT_LE(stats.frontier_leaves, separate_leaves);
  EXPECT_GE(stats.frontier_nodes, 2u);  // at minimum the two roots
}

// A point-mass belief at an absorbing, deterministically-observed goal
// state reproduces itself bitwise under every action: the canonical node
// table stays at exactly ONE node per level however deep the tree is —
// the collapse that makes depth-2+ deep expansion cheap. Without
// cross-level canonicalization the tree would hold 2^depth action-paths.
TEST(DeepBatchFrontierTest, AbsorbingStructureCollapsesAcrossLevels) {
  PomdpBuilder b;
  b.add_state("good", 0.0);
  b.add_state("faulty", -1.0);
  b.mark_goal(0);
  b.add_action("repair", 4.0);
  b.add_action("wait", 1.0);
  b.add_observation("ok");
  b.add_observation("alarm");
  // repair always lands in the goal; wait leaves the state alone.
  b.set_transition(0, 0, 0, 1.0);
  b.set_transition(1, 0, 0, 1.0);
  b.set_transition(0, 1, 0, 1.0);
  b.set_transition(1, 1, 1, 1.0);
  // Observations reveal the state exactly, under either action.
  for (ActionId a = 0; a < 2; ++a) {
    b.set_observation(0, a, 0, 1.0);
    b.set_observation(1, a, 1, 1.0);
  }
  const Pomdp pomdp = b.build();

  ExpansionEngine engine(pomdp);
  ExpansionOptions opts;
  SawLeaf leaf;
  leaf.planes.push_back({0.0, -10.0});

  BeliefBatch batch(pomdp.num_states());
  batch.push_back(Belief::point(pomdp.num_states(), 0), 0);

  for (const int depth : {1, 3, 5}) {
    std::vector<ActionValue> deep_values;
    BatchExpansionStats stats;
    engine.action_values_batch_deep(batch, depth, SpanLeaf::of(leaf), opts, deep_values,
                                    &stats);
    EXPECT_TRUE(stats.deep);
    // One distinct belief per interior level, one distinct leaf.
    EXPECT_EQ(stats.frontier_nodes, static_cast<std::size_t>(depth));
    EXPECT_EQ(stats.frontier_leaves, 1u);

    std::vector<ActionValue> classic;
    engine.action_values_batch(batch, depth, SpanLeaf::of(leaf), opts, classic);
    expect_rows_equal(deep_values, classic, "absorbing deep vs classic",
                      static_cast<std::uint64_t>(depth));
  }
}

}  // namespace
}  // namespace recoverd
