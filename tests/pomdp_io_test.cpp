#include "pomdp/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "util/check.hpp"

namespace recoverd {
namespace {

void expect_models_equal(const Pomdp& a, const Pomdp& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_actions(), b.num_actions());
  ASSERT_EQ(a.num_observations(), b.num_observations());
  EXPECT_EQ(a.terminate_action(), b.terminate_action());
  EXPECT_EQ(a.terminate_state(), b.terminate_state());
  for (StateId s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.mdp().state_name(s), b.mdp().state_name(s));
    EXPECT_DOUBLE_EQ(a.mdp().state_rate_reward(s), b.mdp().state_rate_reward(s));
    EXPECT_EQ(a.mdp().is_goal(s), b.mdp().is_goal(s));
  }
  for (ActionId act = 0; act < a.num_actions(); ++act) {
    EXPECT_EQ(a.mdp().action_name(act), b.mdp().action_name(act));
    EXPECT_DOUBLE_EQ(a.mdp().duration(act), b.mdp().duration(act));
    for (StateId s = 0; s < a.num_states(); ++s) {
      EXPECT_DOUBLE_EQ(a.mdp().reward(s, act), b.mdp().reward(s, act));
      EXPECT_DOUBLE_EQ(a.mdp().rate_reward(s, act), b.mdp().rate_reward(s, act));
      EXPECT_DOUBLE_EQ(a.mdp().impulse_reward(s, act), b.mdp().impulse_reward(s, act));
      for (StateId t = 0; t < a.num_states(); ++t) {
        EXPECT_DOUBLE_EQ(a.mdp().transition_prob(s, act, t),
                         b.mdp().transition_prob(s, act, t));
      }
      for (ObsId o = 0; o < a.num_observations(); ++o) {
        EXPECT_DOUBLE_EQ(a.observation_prob(s, act, o), b.observation_prob(s, act, o));
      }
    }
  }
}

TEST(PomdpIo, RoundTripTwoServer) {
  const Pomdp original = models::make_two_server();
  std::stringstream buffer;
  save_pomdp(buffer, original);
  const Pomdp loaded = load_pomdp(buffer);
  expect_models_equal(original, loaded);
}

TEST(PomdpIo, RoundTripTerminateTransformed) {
  const Pomdp original = models::make_two_server_without_notification(12345.5);
  std::stringstream buffer;
  save_pomdp(buffer, original);
  const Pomdp loaded = load_pomdp(buffer);
  ASSERT_TRUE(loaded.has_terminate_action());
  expect_models_equal(original, loaded);
}

TEST(PomdpIo, RoundTripEmnModelExactly) {
  const Pomdp original = models::make_emn_recovery_model();
  std::stringstream buffer;
  save_pomdp(buffer, original);
  const Pomdp loaded = load_pomdp(buffer);
  expect_models_equal(original, loaded);
}

TEST(PomdpIo, QuotedNamesSurvive) {
  PomdpBuilder b;
  const StateId s = b.add_state("state with spaces", -0.5);
  const StateId g = b.add_state("ok", 0.0);
  b.mark_goal(g);
  const ActionId a = b.add_action("fix it", 2.0);
  b.set_transition(s, a, g, 1.0);
  b.set_transition(g, a, g, 1.0);
  const ObsId o = b.add_observation("all clear");
  b.set_observation_all_actions(s, o, 1.0);
  b.set_observation_all_actions(g, o, 1.0);
  const Pomdp original = b.build();

  std::stringstream buffer;
  save_pomdp(buffer, original);
  const Pomdp loaded = load_pomdp(buffer);
  EXPECT_EQ(loaded.mdp().find_state("state with spaces"), s);
  EXPECT_EQ(loaded.mdp().find_action("fix it"), a);
  EXPECT_EQ(loaded.find_observation("all clear"), o);
}

TEST(PomdpIo, FileRoundTrip) {
  const std::string path = "/tmp/recoverd_io_test.pomdp";
  const Pomdp original = models::make_two_server();
  save_pomdp_file(path, original);
  const Pomdp loaded = load_pomdp_file(path);
  expect_models_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(PomdpIo, RejectsMissingHeader) {
  std::stringstream buffer("state s 0 goal\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, RejectsUnknownKeyword) {
  std::stringstream buffer("recoverd-pomdp 1\nfrobnicate x\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, RejectsUnknownReferences) {
  std::stringstream buffer(
      "recoverd-pomdp 1\n"
      "state s 0 goal\n"
      "action a 1\n"
      "observation o\n"
      "T s a nonexistent 1.0\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, RejectsBadNumbers) {
  std::stringstream buffer(
      "recoverd-pomdp 1\n"
      "state s abc goal\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, RejectsDuplicates) {
  std::stringstream buffer(
      "recoverd-pomdp 1\n"
      "state s 0 goal\n"
      "state s 0\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, RejectsUnterminatedQuote) {
  std::stringstream buffer("recoverd-pomdp 1\nstate |broken 0\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, RevalidatesOnLoad) {
  // A hand-edited file with a non-stochastic row must be rejected by the
  // builder validation, not silently accepted.
  std::stringstream buffer(
      "recoverd-pomdp 1\n"
      "state s 0 goal\n"
      "action a 1\n"
      "observation o\n"
      "T s a s 0.5\n"
      "O s a o 1.0\n");
  EXPECT_THROW(load_pomdp(buffer), ModelError);
}

TEST(PomdpIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(
      "# full line comment\n"
      "\n"
      "recoverd-pomdp 1\n"
      "state s 0 goal  # trailing comment\n"
      "action a 1\n"
      "observation o\n"
      "T s a s 1.0\n"
      "O s a o 1.0\n");
  const Pomdp loaded = load_pomdp(buffer);
  EXPECT_EQ(loaded.num_states(), 1u);
}

}  // namespace
}  // namespace recoverd
