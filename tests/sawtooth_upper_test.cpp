#include "bounds/sawtooth_upper.hpp"

#include <gtest/gtest.h>

#include "bounds/incremental_update.hpp"
#include "bounds/ra_bound.hpp"
#include "bounds/upper_bound.hpp"
#include "models/emn.hpp"
#include "models/two_server.hpp"
#include "pomdp/exact_solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::bounds {
namespace {

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

TEST(SawtoothUpper, StartsAtQmdpCombination) {
  const Pomdp p = models::make_two_server_with_notification();
  const SawtoothUpperBound upper(p);
  const auto qmdp = compute_qmdp_bound(p.mdp());
  ASSERT_TRUE(qmdp.converged());
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Belief pi = random_belief(p.num_states(), rng);
    EXPECT_NEAR(upper.evaluate(pi), qmdp.evaluate(pi.probabilities()), 1e-12);
  }
  EXPECT_EQ(upper.size(), 0u);
}

TEST(SawtoothUpper, ThrowsOnUntransformedModel) {
  const Pomdp p = models::make_two_server();
  // Untransformed two-server still has a finite QMDP value (Observe is free
  // in Null), so use a model whose MDP genuinely diverges: strip the goal
  // absorption by constructing a looping model.
  PomdpBuilder b;
  const StateId s0 = b.add_state("s0", -1.0);
  const StateId s1 = b.add_state("s1", -1.0);
  const ActionId a = b.add_action("a", 1.0);
  b.set_transition(s0, a, s1, 1.0);
  b.set_transition(s1, a, s0, 1.0);
  b.mark_goal(s0);
  const ObsId o = b.add_observation("o");
  b.set_observation_all_actions(s0, o, 1.0);
  b.set_observation_all_actions(s1, o, 1.0);
  const Pomdp looping = b.build();
  EXPECT_THROW(SawtoothUpperBound{looping}, ModelError);
  (void)p;
}

TEST(SawtoothUpper, ImprovementMonotoneAndAboveLowerBound) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  SawtoothUpperBound upper(p);
  const BoundSet lower = make_ra_bound_set(p.mdp());
  Rng rng(5);
  const Belief probe = random_belief(p.num_states(), rng);
  double prev = upper.evaluate(probe);
  for (int i = 0; i < 20; ++i) {
    upper.improve_at(random_belief(p.num_states(), rng));
    upper.improve_at(probe);
    const double now = upper.evaluate(probe);
    EXPECT_LE(now, prev + 1e-9);  // upper bound only tightens
    EXPECT_GE(now, lower.evaluate(probe.probabilities()) - 1e-9);
    prev = now;
  }
}

TEST(SawtoothUpper, StaysAboveExactFiniteHorizonValue) {
  // V_H ≥ V* and UB ≥ V*; but also UB must stay above the *infinite* optimal
  // — cross-check: after improvement UB(π) ≥ V*(π) is certified by
  // UB(π) ≥ V_H(π) + (tail ≤ 0 means V_H ≥ V*), i.e. UB ≥ V* follows from
  // UB ≥ V*, tested here via the weaker-but-checkable UB ≥ RA and a direct
  // comparison against the exact V_H at horizon 6 is NOT valid (V_H ≥ V*
  // too, both upper bounds). Instead verify UB never crosses below the
  // *lower* bound set after joint refinement.
  const Pomdp p = models::make_two_server_with_notification();
  SawtoothUpperBound upper(p);
  BoundSet lower = make_ra_bound_set(p.mdp());
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const Belief pi = random_belief(p.num_states(), rng);
    upper.improve_at(pi);
    improve_at(p, lower, pi);
  }
  for (int i = 0; i < 40; ++i) {
    const Belief pi = random_belief(p.num_states(), rng);
    EXPECT_GE(upper.evaluate(pi) + 1e-9, lower.evaluate(pi.probabilities()));
  }
}

TEST(SawtoothUpper, InterpolationTightAtStoredPoint) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  SawtoothUpperBound upper(p);
  const Belief pi = Belief::uniform(p.num_states());
  const double before = upper.evaluate(pi);
  const double gain = upper.improve_at(pi);
  if (gain > 0.0) {
    EXPECT_NEAR(upper.evaluate(pi), before - gain, 1e-9);
    EXPECT_EQ(upper.size(), 1u);
  }
}

TEST(SawtoothUpper, CapacityEvictsLeastUsed) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  SawtoothUpperBound upper(p, /*capacity=*/3);
  Rng rng(17);
  for (int i = 0; i < 20; ++i) upper.improve_at(random_belief(p.num_states(), rng));
  EXPECT_LE(upper.size(), 3u);
}

TEST(SawtoothUpper, WorksOnEmnModel) {
  const Pomdp p = models::make_emn_recovery_model();
  SawtoothUpperBound upper(p);
  const BoundSet lower = make_ra_bound_set(p.mdp());
  std::vector<StateId> faults;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!p.mdp().is_goal(s) && s != p.terminate_state()) faults.push_back(s);
  }
  const Belief reference = Belief::uniform_over(p.num_states(), faults);
  const double before = upper.evaluate(reference);
  for (int i = 0; i < 5; ++i) upper.improve_at(reference);
  const double after = upper.evaluate(reference);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_GE(after, lower.evaluate(reference.probabilities()) - 1e-9);
}

}  // namespace
}  // namespace recoverd::bounds
