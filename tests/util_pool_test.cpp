// Determinism and protocol tests for the persistent work pool (util/
// work_pool.hpp): every task index runs exactly once for any thread cap,
// results gathered into index-addressed slots are bitwise invariant across
// caps, nested run() executes inline instead of deadlocking, and the stats
// tallies the obs layer mirrors into pool.* gauges move the right way.
#include "util/work_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace recoverd::util {
namespace {

// The pool is a process-wide singleton; every test restores an effectively
// uncapped team so suite order can't leak a tiny cap into later tests.
struct WorkPoolTest : ::testing::Test {
  ~WorkPoolTest() override {
    WorkPool::instance().configure_threads(static_cast<std::size_t>(-1));
  }
};

TEST_F(WorkPoolTest, RunExecutesEveryTaskExactlyOnce) {
  WorkPool& pool = WorkPool::instance();
  for (const std::size_t tasks : {std::size_t{1}, std::size_t{2}, std::size_t{16},
                                  std::size_t{33}}) {
    std::vector<std::atomic<int>> ran(tasks);
    for (auto& r : ran) r.store(0);
    pool.run(tasks, [&](std::size_t t) { ran[t].fetch_add(1); });
    for (std::size_t t = 0; t < tasks; ++t) {
      EXPECT_EQ(ran[t].load(), 1) << "tasks=" << tasks << " index=" << t;
    }
  }
}

// The call-site discipline the pool documents: tasks fill disjoint
// index-addressed slots, the caller reduces in fixed index order after
// run() returns. The reduced value must be bitwise identical for any
// thread cap — including a cap of 1, which runs everything inline.
TEST_F(WorkPoolTest, IndexedSlotsAreBitwiseInvariantAcrossThreadCaps) {
  WorkPool& pool = WorkPool::instance();
  constexpr std::size_t kTasks = 64;
  const auto reduce_with_cap = [&](std::size_t cap) {
    pool.configure_threads(cap);
    std::vector<double> slots(kTasks);
    pool.run(kTasks, [&](std::size_t t) {
      double v = 1.0;
      for (std::size_t i = 0; i <= t; ++i) v = v * 0.9999 + std::sin(double(i));
      slots[t] = v;
    });
    double total = 0.0;
    for (std::size_t t = 0; t < kTasks; ++t) total += slots[t];  // fixed order
    return total;
  };
  const double reference = reduce_with_cap(1);
  for (const std::size_t cap : {std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
    const double got = reduce_with_cap(cap);
    EXPECT_EQ(got, reference) << "cap=" << cap;  // bitwise, not approximate
  }
}

// A task that submits again (an episode whose controller fans out root
// actions) must run the nested indices inline on its own thread rather
// than deadlock on the shared team.
TEST_F(WorkPoolTest, NestedRunExecutesInlineWithoutDeadlock) {
  WorkPool& pool = WorkPool::instance();
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 5;
  std::vector<std::atomic<int>> inner_runs(kOuter * kInner);
  for (auto& r : inner_runs) r.store(0);
  pool.run(kOuter, [&](std::size_t outer) {
    pool.run(kInner, [&](std::size_t inner) {
      inner_runs[outer * kInner + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < inner_runs.size(); ++i) {
    EXPECT_EQ(inner_runs[i].load(), 1) << "nested index " << i;
  }
}

TEST_F(WorkPoolTest, SingleTaskRunsInlineAndZeroTasksIsANoop) {
  WorkPool& pool = WorkPool::instance();
  const WorkPool::Stats before = pool.stats();
  std::atomic<int> ran{0};
  pool.run(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.run(1, [&](std::size_t t) {
    EXPECT_EQ(t, 0u);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
  const WorkPool::Stats after = pool.stats();
  EXPECT_EQ(after.dispatches, before.dispatches);  // never engaged the team
  EXPECT_EQ(after.inline_tasks, before.inline_tasks + 1);
}

// The zero-per-decide-spawn contract the throughput campaign gates on:
// once the team is warm, further dispatches create no threads, and every
// dispatched task counts a spawn the old spawn-per-call design would have
// paid.
TEST_F(WorkPoolTest, WarmPoolDispatchesWithoutCreatingThreads) {
  WorkPool& pool = WorkPool::instance();
  pool.configure_threads(4);
  pool.run(4, [](std::size_t) {});  // warm the team
  const WorkPool::Stats warm = pool.stats();
  for (int i = 0; i < 10; ++i) {
    pool.run(4, [](std::size_t) {});
  }
  const WorkPool::Stats after = pool.stats();
  EXPECT_EQ(after.threads_created, warm.threads_created);
  EXPECT_EQ(after.dispatches, warm.dispatches + 10);
  EXPECT_EQ(after.tasks, warm.tasks + 40);
  // Warm dispatches create nothing, so every task index is a spawn the
  // old spawn-per-call design would have paid.
  EXPECT_EQ(after.spawns_avoided, warm.spawns_avoided + 40);
  EXPECT_EQ(after.threads_live, after.threads_created);  // nothing exited
}

TEST_F(WorkPoolTest, ConfigureThreadsRejectsZero) {
  EXPECT_THROW(WorkPool::instance().configure_threads(0), PreconditionError);
  EXPECT_GE(WorkPool::instance().thread_cap(), 1u);  // cap unchanged by the throw
}

TEST_F(WorkPoolTest, ThreadCapRoundTrips) {
  WorkPool& pool = WorkPool::instance();
  pool.configure_threads(3);
  EXPECT_EQ(pool.thread_cap(), 3u);
  pool.configure_threads(1);  // caller-only: run() must still complete
  std::atomic<int> ran{0};
  pool.run(9, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 9);
}

}  // namespace
}  // namespace recoverd::util
