#include "models/emn.hpp"

#include <gtest/gtest.h>

#include "bounds/comparison_bounds.hpp"
#include "bounds/ra_bound.hpp"
#include "bounds/upper_bound.hpp"
#include "models/synthetic.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/conditions.hpp"

namespace recoverd::models {
namespace {

TEST(EmnModel, RecoveryModelShape) {
  const Pomdp p = make_emn_recovery_model();
  EXPECT_EQ(p.num_states(), 15u);   // 14 + sT
  EXPECT_EQ(p.num_actions(), 10u);  // 9 + aT
  EXPECT_EQ(p.num_observations(), 129u);
  EXPECT_TRUE(p.has_terminate_action());
}

TEST(EmnModel, SatisfiesRecoveryConditions) {
  const Pomdp base = make_emn_base();
  EXPECT_TRUE(check_condition1(base.mdp()).satisfied);
  EXPECT_TRUE(check_condition2(base.mdp()).satisfied);
  const Pomdp recovery = make_emn_recovery_model();
  EXPECT_TRUE(check_condition1(recovery).satisfied);
  EXPECT_TRUE(check_condition2(recovery.mdp()).satisfied);
}

TEST(EmnModel, LacksRecoveryNotification) {
  // §5: "the system lacks recovery notification since an 'all clear' by the
  // monitors might just mean that an EMN server has become a zombie".
  EXPECT_FALSE(detect_recovery_notification(make_emn_base()));
}

TEST(EmnModel, TerminationRewardsUseOperatorResponseTime) {
  EmnConfig config;
  const Pomdp p = make_emn_recovery_model(config);
  const EmnIds ids = emn_ids(p, config);
  const ActionId at = p.terminate_action();
  // Zombie(S1) drops half the requests: r(s, aT) = −0.5 · 21600.
  EXPECT_NEAR(p.mdp().reward(ids.topo.zombie_states[EmnIds::S1], at),
              -0.5 * config.operator_response_time, 1e-6);
  EXPECT_NEAR(p.mdp().reward(ids.topo.null_state, at), 0.0, 1e-12);
  // HostC crash drops everything.
  EXPECT_NEAR(p.mdp().reward(ids.topo.host_states[EmnIds::HostC], at),
              -config.operator_response_time, 1e-6);
}

TEST(EmnModel, RaBoundConvergesAndIsSane) {
  const Pomdp p = make_emn_recovery_model();
  const auto ra = bounds::compute_ra_bound(p.mdp());
  ASSERT_TRUE(ra.converged());
  const auto qmdp = bounds::compute_qmdp_bound(p.mdp());
  ASSERT_TRUE(qmdp.converged());
  for (StateId s = 0; s < p.num_states(); ++s) {
    EXPECT_LE(ra.values[s], qmdp.values[s] + 1e-8) << p.mdp().state_name(s);
    EXPECT_LE(ra.values[s], 1e-9);
  }
  EXPECT_NEAR(ra.values[p.terminate_state()], 0.0, 1e-8);
}

TEST(EmnModel, CompetitorBoundsFailOnEmn) {
  // §3.1 on the real evaluation model: BI-POMDP diverges; the blind-policy
  // set is saved only by aT (the restart policies still diverge).
  const Pomdp p = make_emn_recovery_model();
  EXPECT_FALSE(bounds::compute_bi_bound(p.mdp()).converged());
  const auto blind = bounds::compute_blind_policy_bounds(p.mdp());
  EXPECT_FALSE(blind.all_converged());
  EXPECT_TRUE(blind.per_action[p.terminate_action()].converged());
}

TEST(EmnModel, ZombieBeliefIsAmbiguousAcrossServers) {
  // Path monitors cannot localise which EMN server is the zombie: from a
  // uniform fault prior, a path-alarm observation must leave both server
  // zombies with comparable posterior mass.
  const Pomdp p = make_emn_base();
  const EmnIds ids = emn_ids(p);
  std::vector<StateId> faults;
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (!p.mdp().is_goal(s)) faults.push_back(s);
  }
  const Belief prior = Belief::uniform_over(p.num_states(), faults);
  // Observation: both path monitors alarm, all pings clear (bits 5 and 6).
  const ObsId obs = (1u << 5) | (1u << 6);
  const auto upd = update_belief(p, prior, ids.topo.observe_action, obs);
  ASSERT_TRUE(upd.has_value());
  const double z1 = upd->next[ids.topo.zombie_states[EmnIds::S1]];
  const double z2 = upd->next[ids.topo.zombie_states[EmnIds::S2]];
  EXPECT_GT(z1, 0.01);
  EXPECT_NEAR(z1, z2, 1e-9);  // symmetric servers stay indistinguishable
  // Ping-silent alarms also implicate the DB zombie (hits both paths).
  EXPECT_GT(upd->next[ids.topo.zombie_states[EmnIds::DB]], z1);
}

TEST(SyntheticModel, SatisfiesConditionsAndSolves) {
  SyntheticMdpParams params;
  params.num_states = 500;
  params.seed = 7;
  const Mdp m = make_synthetic_recovery_mdp(params);
  EXPECT_EQ(m.num_states(), 500u);
  EXPECT_TRUE(check_condition1(m).satisfied);
  EXPECT_TRUE(check_condition2(m).satisfied);
  const auto ra = bounds::compute_ra_bound(m);
  ASSERT_TRUE(ra.converged());
  EXPECT_NEAR(ra.values[0], 0.0, 1e-9);
  for (StateId s = 1; s < m.num_states(); ++s) EXPECT_LT(ra.values[s], 0.0);
}

TEST(SyntheticModel, ScalesToLargeStateSpaces) {
  // §4.3 claim at test scale: 20k states solve quickly; the bench pushes to
  // hundreds of thousands.
  SyntheticMdpParams params;
  params.num_states = 20000;
  params.seed = 3;
  const Mdp m = make_synthetic_recovery_mdp(params);
  const auto ra = bounds::compute_ra_bound(m);
  EXPECT_TRUE(ra.converged());
}

TEST(SyntheticModel, DeterministicForSeed) {
  SyntheticMdpParams params;
  params.num_states = 100;
  params.seed = 42;
  const Mdp a = make_synthetic_recovery_mdp(params);
  const Mdp c = make_synthetic_recovery_mdp(params);
  for (StateId s = 0; s < a.num_states(); ++s) {
    for (ActionId act = 0; act < a.num_actions(); ++act) {
      EXPECT_DOUBLE_EQ(a.reward(s, act), c.reward(s, act));
    }
  }
}

}  // namespace
}  // namespace recoverd::models
