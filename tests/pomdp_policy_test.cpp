#include "pomdp/policy.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "models/synthetic.hpp"
#include "models/two_server.hpp"
#include "util/check.hpp"

namespace recoverd {
namespace {

TEST(PolicyEvaluation, OptimalPolicyValueMatchesValueIteration) {
  const Pomdp p = models::make_two_server_with_notification();
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  const auto eval = evaluate_policy(p.mdp(), vi.policy);
  ASSERT_TRUE(eval.converged());
  EXPECT_TRUE(linalg::approx_equal(eval.values, vi.values, 1e-7));
}

TEST(PolicyEvaluation, ImproperPolicyReportsDivergence) {
  // Always Restart(b): loops in Fault(a) accruing -1 per step forever.
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const Policy always_b(p.num_states(), ids.restart_b);
  const auto eval = evaluate_policy(p.mdp(), always_b);
  EXPECT_FALSE(eval.converged());
}

TEST(PolicyEvaluation, TerminatePolicyHasTerminationValues) {
  const double t_op = 40.0;
  const Pomdp p = models::make_two_server_without_notification(t_op);
  const auto ids = models::two_server_ids(p);
  const Policy always_terminate(p.num_states(), p.terminate_action());
  const auto eval = evaluate_policy(p.mdp(), always_terminate);
  ASSERT_TRUE(eval.converged());
  EXPECT_NEAR(eval.values[ids.null_state], 0.0, 1e-9);
  EXPECT_NEAR(eval.values[ids.fault_a], -0.5 * t_op, 1e-8);
}

TEST(PolicyEvaluation, DiscountedEvaluationIsFinite) {
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const Policy always_b(p.num_states(), ids.restart_b);
  const auto eval = evaluate_policy(p.mdp(), always_b, 0.9);
  ASSERT_TRUE(eval.converged());
  EXPECT_NEAR(eval.values[ids.fault_a], -10.0, 1e-6);  // -1/(1-0.9)
}

TEST(PolicyEvaluation, Validation) {
  const Pomdp p = models::make_two_server();
  EXPECT_THROW(evaluate_policy(p.mdp(), Policy{}), PreconditionError);
  EXPECT_THROW(evaluate_policy(p.mdp(), Policy(p.num_states(), 99)), PreconditionError);
  EXPECT_THROW(evaluate_policy(p.mdp(), Policy(p.num_states(), 0), 0.0),
               PreconditionError);
}

TEST(GreedyPolicy, ExtractsOptimalActionsFromOptimalValues) {
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  const Policy greedy = greedy_policy(p.mdp(), vi.values);
  EXPECT_EQ(greedy[ids.fault_a], ids.restart_a);
  EXPECT_EQ(greedy[ids.fault_b], ids.restart_b);
}

TEST(PolicyIteration, MatchesValueIterationOnTerminateModel) {
  const Pomdp p = models::make_two_server_without_notification(40.0);
  // Seed with the proper aT-everywhere policy.
  const auto result =
      policy_iteration(p.mdp(), Policy(p.num_states(), p.terminate_action()));
  ASSERT_TRUE(result.converged());
  const auto vi = value_iteration(p.mdp());
  ASSERT_TRUE(vi.converged());
  EXPECT_TRUE(linalg::approx_equal(result.values, vi.values, 1e-6));
  EXPECT_LE(result.improvement_steps, 10u);
}

TEST(PolicyIteration, ReportsImproperInitialPolicy) {
  const Pomdp p = models::make_two_server_with_notification();
  const auto ids = models::two_server_ids(p);
  const auto result = policy_iteration(p.mdp(), Policy(p.num_states(), ids.restart_b));
  EXPECT_FALSE(result.converged());
}

TEST(PolicyIteration, WorksOnSyntheticModels) {
  models::SyntheticMdpParams params;
  params.num_states = 300;
  params.seed = 5;
  const Mdp m = models::make_synthetic_recovery_mdp(params);
  // Action 0 always has the backbone repair edge: a proper initial policy.
  const auto result = policy_iteration(m, Policy(m.num_states(), 0));
  ASSERT_TRUE(result.converged());
  const auto vi = value_iteration(m);
  ASSERT_TRUE(vi.converged());
  EXPECT_TRUE(linalg::approx_equal(result.values, vi.values, 1e-5));
}

TEST(PolicyIteration, DiscountedFromArbitraryPolicy) {
  const Pomdp p = models::make_two_server_with_notification();
  const auto result = policy_iteration(p.mdp(), {}, 0.9);
  ASSERT_TRUE(result.converged());
  ValueIterationOptions opts;
  opts.beta = 0.9;
  const auto vi = value_iteration(p.mdp(), opts);
  ASSERT_TRUE(vi.converged());
  EXPECT_TRUE(linalg::approx_equal(result.values, vi.values, 1e-6));
}

}  // namespace
}  // namespace recoverd
