#include "pomdp/exact_solver.hpp"

#include <gtest/gtest.h>

#include "bounds/ra_bound.hpp"
#include "bounds/upper_bound.hpp"
#include "linalg/vector_ops.hpp"
#include "models/two_server.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

Belief random_belief(std::size_t n, Rng& rng) {
  std::vector<double> pi(n);
  for (auto& v : pi) v = rng.uniform01() + 1e-9;
  return Belief(std::move(pi));
}

TEST(PrunePointwise, RemovesDominatedKeepsFrontier) {
  std::vector<AlphaVector> vectors{
      {-1.0, -5.0}, {-5.0, -1.0}, {-6.0, -2.0} /* dominated by second */,
      {-1.0, -5.0} /* duplicate (dominated within tolerance) */};
  const auto kept = prune_pointwise_dominated(std::move(vectors), 1e-12);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(PrunePointwise, SingleVectorSurvives) {
  std::vector<AlphaVector> vectors{{-1.0, -1.0}};
  EXPECT_EQ(prune_pointwise_dominated(std::move(vectors)).size(), 1u);
}

TEST(ExactSolver, HorizonZeroIsZero) {
  const Pomdp p = models::make_two_server_with_notification();
  ExactSolverOptions opts;
  opts.horizon = 0;
  const auto result = solve_finite_horizon(p, opts);
  ASSERT_EQ(result.alpha_vectors.size(), 1u);
  const Belief pi = Belief::uniform(p.num_states());
  EXPECT_DOUBLE_EQ(evaluate_alpha_vectors(result.alpha_vectors, pi), 0.0);
}

TEST(ExactSolver, MatchesTreeExpansionExactly) {
  // Γ_H evaluated at any belief must equal the depth-H Max-Avg expansion
  // with zero leaves — they compute the same recursion.
  const Pomdp p = models::make_two_server_with_notification();
  const LeafEvaluator zero = [](const Belief&) { return 0.0; };
  Rng rng(3);
  for (int horizon = 1; horizon <= 4; ++horizon) {
    ExactSolverOptions opts;
    opts.horizon = horizon;
    const auto result = solve_finite_horizon(p, opts);
    ASSERT_FALSE(result.truncated);
    for (int trial = 0; trial < 10; ++trial) {
      const Belief pi = random_belief(p.num_states(), rng);
      EXPECT_NEAR(evaluate_alpha_vectors(result.alpha_vectors, pi),
                  bellman_value(p, pi, horizon, zero), 1e-8)
          << "horizon " << horizon;
    }
  }
}

TEST(ExactSolver, ValuesDecreaseWithHorizon) {
  // Non-positive rewards: longer horizons only accumulate more cost.
  const Pomdp p = models::make_two_server_without_notification(40.0);
  Rng rng(7);
  const Belief pi = random_belief(p.num_states(), rng);
  double prev = 0.0;
  for (int horizon = 1; horizon <= 4; ++horizon) {
    ExactSolverOptions opts;
    opts.horizon = horizon;
    const auto result = solve_finite_horizon(p, opts);
    ASSERT_FALSE(result.truncated);
    const double v = evaluate_alpha_vectors(result.alpha_vectors, pi);
    EXPECT_LE(v, prev + 1e-9);
    prev = v;
  }
}

TEST(ExactSolver, SandwichesRaBoundAndQmdp) {
  // RA ≤ V* ≤ V_H ≤ 0 and V* ≤ QMDP: the exact finite-horizon solution must
  // sit above the RA-Bound everywhere.
  const Pomdp p = models::make_two_server_with_notification();
  const auto ra = bounds::compute_ra_bound(p.mdp());
  ASSERT_TRUE(ra.converged());
  ExactSolverOptions opts;
  opts.horizon = 6;
  const auto exact = solve_finite_horizon(p, opts);
  ASSERT_FALSE(exact.truncated);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const Belief pi = random_belief(p.num_states(), rng);
    const double vh = evaluate_alpha_vectors(exact.alpha_vectors, pi);
    EXPECT_GE(vh, linalg::dot(ra.values, pi.probabilities()) - 1e-9);
    EXPECT_LE(vh, 1e-9);
  }
}

TEST(ExactSolver, ConvergesToMdpValueUnderPerfectObservation) {
  models::TwoServerParams params;
  params.coverage = 1.0;
  params.false_positive = 0.0;
  const Pomdp p = models::make_two_server_with_notification(params);
  const auto ids = models::two_server_ids(p);
  const auto qmdp = bounds::compute_qmdp_bound(p.mdp());
  ASSERT_TRUE(qmdp.converged());
  ExactSolverOptions opts;
  opts.horizon = 8;
  const auto exact = solve_finite_horizon(p, opts);
  ASSERT_FALSE(exact.truncated);
  // At point beliefs of a perfectly observed absorbing model, the horizon-8
  // value already equals the MDP optimum.
  for (StateId s : {ids.null_state, ids.fault_a, ids.fault_b}) {
    const Belief pi = Belief::point(p.num_states(), s);
    EXPECT_NEAR(evaluate_alpha_vectors(exact.alpha_vectors, pi), qmdp.values[s], 1e-9);
  }
}

TEST(ExactSolver, StageSizesReportedAndBounded) {
  const Pomdp p = models::make_two_server();
  ExactSolverOptions opts;
  opts.horizon = 3;
  const auto result = solve_finite_horizon(p, opts);
  ASSERT_FALSE(result.truncated);
  EXPECT_EQ(result.stage_sizes.size(), 3u);
  for (std::size_t size : result.stage_sizes) EXPECT_GE(size, 1u);
}

TEST(ExactSolver, TruncationCapRespected) {
  const Pomdp p = models::make_two_server();
  ExactSolverOptions opts;
  opts.horizon = 10;
  opts.max_vectors = 2;  // absurdly small: must truncate, not explode
  const auto result = solve_finite_horizon(p, opts);
  EXPECT_TRUE(result.truncated);
}

TEST(ExactSolver, Validation) {
  const Pomdp p = models::make_two_server();
  ExactSolverOptions opts;
  opts.horizon = -1;
  EXPECT_THROW(solve_finite_horizon(p, opts), PreconditionError);
  const std::vector<AlphaVector> empty;
  EXPECT_THROW(evaluate_alpha_vectors(empty, Belief::uniform(3)), PreconditionError);
}

}  // namespace
}  // namespace recoverd
