// Randomized (fuzz-style) sweep: generate random recovery POMDPs from
// seeds, and check that every invariant of the library holds on models no
// human designed — builder validation, §3.1 conditions after transforms,
// the RA-Bound sandwich, serialization round-trips, and belief-filter
// consistency.
#include <gtest/gtest.h>

#include <sstream>

#include "bounds/ra_bound.hpp"
#include "bounds/upper_bound.hpp"
#include "linalg/vector_ops.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/conditions.hpp"
#include "pomdp/io.hpp"
#include "pomdp/transforms.hpp"
#include "util/rng.hpp"

namespace recoverd {
namespace {

// Builds a random but valid recovery POMDP: state 0 is the goal; every
// non-goal state has at least one action path to the goal; observations are
// random stochastic rows.
Pomdp make_random_recovery_pomdp(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_states = 2 + rng.uniform_index(6);   // 2..7
  const std::size_t num_actions = 1 + rng.uniform_index(4);  // 1..4
  const std::size_t num_obs = 1 + rng.uniform_index(4);      // 1..4

  PomdpBuilder b;
  // (Two-step string building sidesteps a GCC 12 -Wrestrict false positive
  // on operator+ with temporaries.)
  for (StateId s = 0; s < num_states; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    b.add_state(name, s == 0 ? 0.0 : -rng.uniform(0.05, 1.0));
  }
  b.mark_goal(0);
  for (ActionId a = 0; a < num_actions; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    b.add_action(name, rng.uniform(0.5, 10.0));
  }
  for (ObsId o = 0; o < num_obs; ++o) {
    std::string name = "o";
    name += std::to_string(o);
    b.add_observation(name);
  }

  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      // Random transition row over <=3 targets; action 0 repairs toward a
      // strictly lower state id, guaranteeing Condition 1.
      std::vector<StateId> targets;
      if (s > 0 && a == 0) targets.push_back(rng.uniform_index(s));
      targets.push_back(rng.uniform_index(num_states));
      if (rng.bernoulli(0.5)) targets.push_back(rng.uniform_index(num_states));
      std::vector<double> weights(targets.size());
      for (auto& w : weights) w = rng.uniform(0.1, 1.0);
      const double total = linalg::sum(weights);
      // Merge duplicates by accumulating before set_transition (which
      // overwrites).
      std::vector<double> row(num_states, 0.0);
      for (std::size_t i = 0; i < targets.size(); ++i) {
        row[targets[i]] += weights[i] / total;
      }
      for (StateId t = 0; t < num_states; ++t) {
        if (row[t] > 0.0) b.set_transition(s, a, t, row[t]);
      }
      if (rng.bernoulli(0.3)) b.set_impulse_reward(s, a, -rng.uniform(0.0, 2.0));
    }
  }
  for (StateId s = 0; s < num_states; ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      std::vector<double> row(num_obs);
      for (auto& v : row) v = rng.uniform(0.05, 1.0);
      const double total = linalg::sum(row);
      for (ObsId o = 0; o < num_obs; ++o) b.set_observation(s, a, o, row[o] / total);
    }
  }
  return b.build();
}

class RandomizedModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedModelTest, SatisfiesCondition1AndCondition2) {
  const Pomdp p = make_random_recovery_pomdp(GetParam());
  EXPECT_TRUE(check_condition1(p.mdp()).satisfied);
  EXPECT_TRUE(check_condition2(p.mdp()).satisfied);
}

TEST_P(RandomizedModelTest, TransformsPreserveConditionsAndConverge) {
  const Pomdp base = make_random_recovery_pomdp(GetParam());
  const Pomdp notified = with_recovery_notification(base);
  EXPECT_TRUE(check_condition1(notified).satisfied);
  const auto ra_notified = bounds::compute_ra_bound(notified.mdp());
  EXPECT_TRUE(ra_notified.converged());

  const Pomdp terminated = add_termination(base, 10.0 + (GetParam() % 100));
  EXPECT_TRUE(check_condition1(terminated).satisfied);
  const auto ra_terminated = bounds::compute_ra_bound(terminated.mdp());
  EXPECT_TRUE(ra_terminated.converged());
}

TEST_P(RandomizedModelTest, RaBoundBelowQmdpOnTransformedModel) {
  const Pomdp p = add_termination(make_random_recovery_pomdp(GetParam()), 50.0);
  const auto ra = bounds::compute_ra_bound(p.mdp());
  const auto qmdp = bounds::compute_qmdp_bound(p.mdp());
  ASSERT_TRUE(ra.converged());
  ASSERT_TRUE(qmdp.converged());
  for (StateId s = 0; s < p.num_states(); ++s) {
    EXPECT_LE(ra.values[s], qmdp.values[s] + 1e-8);
  }
}

TEST_P(RandomizedModelTest, SerializationRoundTripsExactly) {
  const Pomdp original = add_termination(make_random_recovery_pomdp(GetParam()), 33.0);
  std::stringstream buffer;
  save_pomdp(buffer, original);
  const Pomdp loaded = load_pomdp(buffer);
  ASSERT_EQ(loaded.num_states(), original.num_states());
  ASSERT_EQ(loaded.num_actions(), original.num_actions());
  ASSERT_EQ(loaded.num_observations(), original.num_observations());
  for (ActionId a = 0; a < original.num_actions(); ++a) {
    for (StateId s = 0; s < original.num_states(); ++s) {
      EXPECT_DOUBLE_EQ(loaded.mdp().reward(s, a), original.mdp().reward(s, a));
      for (StateId t = 0; t < original.num_states(); ++t) {
        EXPECT_DOUBLE_EQ(loaded.mdp().transition_prob(s, a, t),
                         original.mdp().transition_prob(s, a, t));
      }
      for (ObsId o = 0; o < original.num_observations(); ++o) {
        EXPECT_DOUBLE_EQ(loaded.observation_prob(s, a, o),
                         original.observation_prob(s, a, o));
      }
    }
  }
}

TEST_P(RandomizedModelTest, BeliefFilterStaysConsistent) {
  const Pomdp p = make_random_recovery_pomdp(GetParam());
  Rng rng(GetParam() ^ 0xabcdef);
  Belief belief = Belief::uniform(p.num_states());
  for (int step = 0; step < 20; ++step) {
    const ActionId a = rng.uniform_index(p.num_actions());
    const auto branches = belief_successors(p, belief, a);
    ASSERT_FALSE(branches.empty());
    double total = 0.0;
    for (const auto& br : branches) total += br.probability;
    EXPECT_NEAR(total, 1.0, 1e-9);
    belief = branches[rng.uniform_index(branches.size())].posterior;
    EXPECT_NEAR(linalg::sum(belief.probabilities()), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace recoverd
